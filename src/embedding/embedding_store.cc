#include "src/embedding/embedding_store.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <mutex>
#include <utility>

#include "src/ann/hnsw.h"
#include "src/common/parallel.h"
#include "src/nn/kernels.h"
#include "src/obs/metrics.h"
#include "src/text/similarity.h"

namespace autodc::embedding {

namespace {

// Stores below this size never take the AUTODC_ANN lazy path: the exact
// scan is already microseconds there and stays the recall-1.0 baseline.
constexpr size_t kAnnAutoMinSize = 1024;
// The exact scan goes wide once a single thread would chew through this
// many rows; the grain keeps per-chunk top-k merge cost negligible.
constexpr size_t kParallelScanMin = 8192;
constexpr size_t kParallelScanGrain = 4096;

/// Serializes lazy index builds (a const-path side effect). Only the
/// build takes this lock; ready indexes are read lock-free.
std::mutex& AnnBuildMutex() {
  static std::mutex mu;
  return mu;
}

/// Top-k selector over (similarity, row id) with a total order — higher
/// similarity wins, lower id on ties — so results are deterministic for
/// any scan chunking. Keeps the current worst on top of a size-k heap:
/// O(n log k), and no per-candidate string copies (the old exact scan
/// materialized a Neighbor for every row before sorting).
struct TopK {
  explicit TopK(size_t k) : k(k) { heap.reserve(k + 1); }

  static bool Better(const std::pair<double, size_t>& a,
                     const std::pair<double, size_t>& b) {
    return a.first > b.first || (a.first == b.first && a.second < b.second);
  }

  void Push(double sim, size_t id) {
    if (k == 0) return;
    std::pair<double, size_t> item{sim, id};
    if (heap.size() < k) {
      heap.push_back(item);
      std::push_heap(heap.begin(), heap.end(), Better);
      return;
    }
    if (Better(item, heap.front())) {
      std::pop_heap(heap.begin(), heap.end(), Better);
      heap.back() = item;
      std::push_heap(heap.begin(), heap.end(), Better);
    }
  }

  size_t k;
  std::vector<std::pair<double, size_t>> heap;
};

/// Exclusion lists are tiny (Analogy passes three keys), so a flat
/// probe over resolved row ids beats a hash lookup per candidate.
inline bool IsExcluded(const std::vector<size_t>& exclude_ids, size_t id) {
  for (size_t e : exclude_ids) {
    if (e == id) return true;
  }
  return false;
}

}  // namespace

struct EmbeddingStore::AnnState {
  std::unique_ptr<ann::HnswIndex> index;
  ann::HnswConfig config;
  /// Set when an indexed vector mutates under the index (overwrite,
  /// CenterAndNormalize). Queries fall back to the exact scan until
  /// EnableAnn() rebuilds.
  bool stale = false;
};

EmbeddingStore::~EmbeddingStore() {
  delete ann_.load(std::memory_order_acquire);
}

EmbeddingStore::EmbeddingStore(const EmbeddingStore& other)
    : dim_(other.dim_),
      index_(other.index_),
      keys_(other.keys_),
      vectors_(other.vectors_),
      norms_sq_(other.norms_sq_) {}

EmbeddingStore& EmbeddingStore::operator=(const EmbeddingStore& other) {
  if (this == &other) return *this;
  dim_ = other.dim_;
  index_ = other.index_;
  keys_ = other.keys_;
  vectors_ = other.vectors_;
  norms_sq_ = other.norms_sq_;
  delete ann_.exchange(nullptr, std::memory_order_acq_rel);
  return *this;
}

EmbeddingStore::EmbeddingStore(EmbeddingStore&& other) noexcept
    : dim_(other.dim_),
      index_(std::move(other.index_)),
      keys_(std::move(other.keys_)),
      vectors_(std::move(other.vectors_)),
      norms_sq_(std::move(other.norms_sq_)) {
  ann_.store(other.ann_.exchange(nullptr), std::memory_order_release);
}

EmbeddingStore& EmbeddingStore::operator=(EmbeddingStore&& other) noexcept {
  if (this == &other) return *this;
  dim_ = other.dim_;
  index_ = std::move(other.index_);
  keys_ = std::move(other.keys_);
  vectors_ = std::move(other.vectors_);
  norms_sq_ = std::move(other.norms_sq_);
  delete ann_.exchange(other.ann_.exchange(nullptr),
                       std::memory_order_acq_rel);
  return *this;
}

Status EmbeddingStore::Add(const std::string& key, std::vector<float> vector) {
  if (dim_ == 0) dim_ = vector.size();
  if (vector.size() != dim_) {
    return Status::InvalidArgument(
        "vector for '" + key + "' has dim " + std::to_string(vector.size()) +
        ", store dim is " + std::to_string(dim_));
  }
  double norm_sq = nn::kernels::SumSqF32(vector.data(), vector.size());
  auto it = index_.find(key);
  if (it != index_.end()) {
    vectors_[it->second] = std::move(vector);
    norms_sq_[it->second] = norm_sq;
    // The graph still points at the old geometry; exact fallback until
    // the owner rebuilds.
    if (AnnState* st = ann_.load(std::memory_order_acquire)) st->stale = true;
    return Status::OK();
  }
  index_.emplace(key, keys_.size());
  keys_.push_back(key);
  vectors_.push_back(std::move(vector));
  norms_sq_.push_back(norm_sq);
  if (AnnState* st = ann_.load(std::memory_order_acquire)) {
    // Streaming path: new keys index as they arrive (row id == index id).
    if (!st->stale) st->index->Add(vectors_.back().data());
  }
  return Status::OK();
}

const std::vector<float>* EmbeddingStore::Find(const std::string& key) const {
  auto it = index_.find(key);
  if (it == index_.end()) return nullptr;
  return &vectors_[it->second];
}

std::vector<Neighbor> EmbeddingStore::ExactNearest(
    const std::vector<float>& query, size_t k,
    const std::vector<size_t>& exclude_ids) const {
  // The query norm is fixed across candidates and candidate norms are
  // cached, so each candidate costs one dot product. A dimension
  // mismatch scores 0, matching CosineSimilarity on unequal sizes.
  double query_norm_sq =
      query.size() == dim_
          ? nn::kernels::SumSqF32(query.data(), query.size())
          : -1.0;
  double query_norm =
      query_norm_sq > 0.0 ? std::sqrt(query_norm_sq) : 0.0;
  size_t n = keys_.size();

  auto scan = [&](size_t begin, size_t end, TopK* top) {
    for (size_t i = begin; i < end; ++i) {
      if (IsExcluded(exclude_ids, i)) continue;
      double sim = 0.0;
      if (query_norm_sq > 0.0 && norms_sq_[i] > 0.0) {
        double dot =
            nn::kernels::DotF32D(query.data(), vectors_[i].data(), dim_);
        sim = dot / (query_norm * std::sqrt(norms_sq_[i]));
      }
      top->Push(sim, i);
    }
  };

  std::vector<std::pair<double, size_t>> best;
  if (n >= kParallelScanMin && NumThreads() > 1) {
    // Row-block parallel scan: each chunk keeps its own top-k, chunks
    // merge under a lock, and the final selection re-applies the same
    // total order — so the result is identical for any thread count.
    std::mutex mu;
    ParallelFor(0, n, kParallelScanGrain, [&](size_t begin, size_t end) {
      TopK local(k);
      scan(begin, end, &local);
      std::lock_guard<std::mutex> lock(mu);
      best.insert(best.end(), local.heap.begin(), local.heap.end());
    });
  } else {
    TopK top(k);
    scan(0, n, &top);
    best = std::move(top.heap);
  }
  std::sort(best.begin(), best.end(), TopK::Better);
  if (best.size() > k) best.resize(k);

  AUTODC_OBS_INC("embedding.nearest.exact");
  std::vector<Neighbor> out;
  out.reserve(best.size());
  for (const auto& [sim, id] : best) {
    out.push_back(Neighbor{keys_[id], sim});
  }
  return out;
}

std::vector<Neighbor> EmbeddingStore::AnnNearest(
    const std::vector<float>& query, size_t k,
    const std::vector<size_t>& exclude_ids) const {
  // Degenerate queries (dim mismatch, zero norm) have no graph
  // geometry to navigate; keep the exact path's semantics for them.
  if (query.size() != dim_) return ExactNearest(query, k, exclude_ids);
  double query_norm_sq = nn::kernels::SumSqF32(query.data(), query.size());
  if (query_norm_sq <= 0.0) return ExactNearest(query, k, exclude_ids);

  const AnnState* st = ann_.load(std::memory_order_acquire);
  std::vector<ann::ScoredId> hits =
      st->index->Search(query.data(), k + exclude_ids.size());

  // Re-score survivors with the exact path's formula so similarity
  // values agree bit-for-bit with an exact scan returning the same key.
  double query_norm = std::sqrt(query_norm_sq);
  std::vector<std::pair<double, size_t>> best;
  best.reserve(hits.size());
  for (const ann::ScoredId& hit : hits) {
    if (IsExcluded(exclude_ids, hit.id)) continue;
    double sim = 0.0;
    if (norms_sq_[hit.id] > 0.0) {
      double dot = nn::kernels::DotF32D(query.data(),
                                        vectors_[hit.id].data(), dim_);
      sim = dot / (query_norm * std::sqrt(norms_sq_[hit.id]));
    }
    best.emplace_back(sim, hit.id);
  }
  std::sort(best.begin(), best.end(), TopK::Better);
  if (best.size() > k) best.resize(k);

  AUTODC_OBS_INC("embedding.nearest.ann");
  std::vector<Neighbor> out;
  out.reserve(best.size());
  for (const auto& [sim, id] : best) {
    out.push_back(Neighbor{keys_[id], sim});
  }
  return out;
}

bool EmbeddingStore::UseAnnFor(size_t k, size_t num_excluded) const {
  size_t n = keys_.size();
  if (n == 0 || k == 0) return false;
  // Exact-scan fallback for small result margins: when the caller asks
  // for a sizable fraction of the store, the scan is both faster and
  // exact.
  if ((k + num_excluded) * 4 >= n) return false;
  if (const AnnState* st = ann_.load(std::memory_order_acquire)) {
    return !st->stale;
  }
  // Lazy env-driven build: AUTODC_ANN=1 turns large stores over to the
  // index the first time they are queried.
  if (n < kAnnAutoMinSize || !ann::AnnEnvEnabled()) return false;
  std::lock_guard<std::mutex> lock(AnnBuildMutex());
  if (ann_.load(std::memory_order_acquire) == nullptr) {
    (void)BuildAnn(ann::ConfigFromEnv());
  }
  const AnnState* st = ann_.load(std::memory_order_acquire);
  return st != nullptr && !st->stale;
}

Status EmbeddingStore::BuildAnn(const ann::HnswConfig& config) const {
  if (dim_ == 0) {
    return Status::FailedPrecondition(
        "cannot build ANN index: store dimensionality unknown (empty store "
        "constructed without a dim)");
  }
  auto st = std::make_unique<AnnState>();
  st->config = config;
  st->index = std::make_unique<ann::HnswIndex>(dim_, config);
  std::vector<const float*> rows;
  rows.reserve(vectors_.size());
  for (const std::vector<float>& v : vectors_) rows.push_back(v.data());
  st->index->Build(rows);
  delete ann_.exchange(st.release(), std::memory_order_acq_rel);
  return Status::OK();
}

Status EmbeddingStore::EnableAnn() { return EnableAnn(ann::ConfigFromEnv()); }

Status EmbeddingStore::EnableAnn(const ann::HnswConfig& config) {
  return BuildAnn(config);
}

void EmbeddingStore::DisableAnn() {
  delete ann_.exchange(nullptr, std::memory_order_acq_rel);
}

bool EmbeddingStore::AnnActive() const {
  const AnnState* st = ann_.load(std::memory_order_acquire);
  return st != nullptr && !st->stale;
}

std::vector<Neighbor> EmbeddingStore::NearestToVector(
    const std::vector<float>& query, size_t k,
    const std::vector<std::string>& exclude) const {
  // Resolve exclusions to row ids once, up front; keys not in the store
  // fall away here instead of being probed per candidate.
  std::vector<size_t> exclude_ids;
  exclude_ids.reserve(exclude.size());
  for (const std::string& key : exclude) {
    auto it = index_.find(key);
    if (it != index_.end()) exclude_ids.push_back(it->second);
  }
  std::sort(exclude_ids.begin(), exclude_ids.end());
  exclude_ids.erase(std::unique(exclude_ids.begin(), exclude_ids.end()),
                    exclude_ids.end());
  if (UseAnnFor(k, exclude_ids.size())) {
    return AnnNearest(query, k, exclude_ids);
  }
  return ExactNearest(query, k, exclude_ids);
}

Result<std::vector<Neighbor>> EmbeddingStore::Nearest(const std::string& key,
                                                      size_t k) const {
  const std::vector<float>* v = Find(key);
  if (v == nullptr) return Status::NotFound("no embedding for '" + key + "'");
  return NearestToVector(*v, k, {key});
}

Result<double> EmbeddingStore::Similarity(const std::string& a,
                                          const std::string& b) const {
  const std::vector<float>* va = Find(a);
  const std::vector<float>* vb = Find(b);
  if (va == nullptr) return Status::NotFound("no embedding for '" + a + "'");
  if (vb == nullptr) return Status::NotFound("no embedding for '" + b + "'");
  return text::CosineSimilarity(*va, *vb);
}

Result<std::vector<Neighbor>> EmbeddingStore::Analogy(const std::string& a,
                                                      const std::string& b,
                                                      const std::string& c,
                                                      size_t k) const {
  const std::vector<float>* va = Find(a);
  const std::vector<float>* vb = Find(b);
  const std::vector<float>* vc = Find(c);
  if (va == nullptr || vb == nullptr || vc == nullptr) {
    return Status::NotFound("analogy term missing from store");
  }
  std::vector<float> q(dim_);
  for (size_t i = 0; i < dim_; ++i) {
    q[i] = (*vb)[i] - (*va)[i] + (*vc)[i];
  }
  return NearestToVector(q, k, {a, b, c});
}

void EmbeddingStore::CenterAndNormalize() {
  if (vectors_.empty() || dim_ == 0) return;
  std::vector<double> mean(dim_, 0.0);
  for (const auto& v : vectors_) {
    for (size_t i = 0; i < dim_; ++i) mean[i] += v[i];
  }
  for (double& m : mean) m /= static_cast<double>(vectors_.size());
  for (auto& v : vectors_) {
    double norm = 0.0;
    for (size_t i = 0; i < dim_; ++i) {
      v[i] = static_cast<float>(v[i] - mean[i]);
      norm += static_cast<double>(v[i]) * v[i];
    }
    norm = std::sqrt(norm);
    if (norm > 1e-12) {
      for (size_t i = 0; i < dim_; ++i) {
        v[i] = static_cast<float>(v[i] / norm);
      }
    }
  }
  for (size_t i = 0; i < vectors_.size(); ++i) {
    norms_sq_[i] =
        nn::kernels::SumSqF32(vectors_[i].data(), vectors_[i].size());
  }
  if (AnnState* st = ann_.load(std::memory_order_acquire)) st->stale = true;
}

std::vector<float> EmbeddingStore::AverageOf(
    const std::vector<std::string>& keys) const {
  std::vector<float> avg(dim_, 0.0f);
  size_t found = 0;
  for (const std::string& key : keys) {
    const std::vector<float>* v = Find(key);
    if (v == nullptr) continue;
    nn::kernels::AxpyF32(1.0f, v->data(), avg.data(), dim_);
    ++found;
  }
  if (found > 0) {
    for (float& x : avg) x /= static_cast<float>(found);
  }
  return avg;
}

}  // namespace autodc::embedding
