#include "src/embedding/composition.h"

#include <cmath>
#include <functional>

#include "src/common/rng.h"
#include "src/text/tokenizer.h"

namespace autodc::embedding {

std::vector<float> TrigramHashVector(const std::string& token, size_t dim) {
  std::vector<float> out(dim, 0.0f);
  std::vector<std::string> grams = text::CharNgrams(token, 3);
  for (const std::string& g : grams) {
    // Deterministic per-trigram pseudo-random direction.
    Rng rng(std::hash<std::string>()(g));
    for (size_t i = 0; i < dim; ++i) {
      out[i] += static_cast<float>(rng.Normal());
    }
  }
  double norm = 0.0;
  for (float x : out) norm += static_cast<double>(x) * x;
  norm = std::sqrt(norm);
  if (norm > 1e-12) {
    for (float& x : out) x = static_cast<float>(x / norm);
  }
  return out;
}

std::vector<float> EmbedTokens(const EmbeddingStore& words,
                               const std::vector<std::string>& tokens,
                               Composition method, const SifWeights& sif) {
  std::vector<float> out(words.dim(), 0.0f);
  double total_weight = 0.0;
  for (const std::string& tok : tokens) {
    const std::vector<float>* v = words.Find(tok);
    std::vector<float> subword;
    uint64_t count = 0;
    if (sif.vocabulary != nullptr) {
      int64_t id = sif.vocabulary->IdOf(tok);
      if (id >= 0) count = sif.vocabulary->CountOf(static_cast<size_t>(id));
    }
    if (sif.trigram_fallback_below > 0 &&
        (v == nullptr || count < sif.trigram_fallback_below)) {
      subword = TrigramHashVector(tok, words.dim());
      v = &subword;
    }
    if (v == nullptr) continue;
    double w = 1.0;
    if (method == Composition::kSifWeighted && sif.vocabulary != nullptr) {
      double freq = 0.0;
      if (sif.vocabulary->total_count() > 0) {
        freq = static_cast<double>(count) /
               static_cast<double>(sif.vocabulary->total_count());
      }
      w = sif.a / (sif.a + freq);
    }
    for (size_t i = 0; i < out.size(); ++i) {
      out[i] += static_cast<float>(w * (*v)[i]);
    }
    total_weight += w;
  }
  if (total_weight > 0.0) {
    for (float& x : out) x = static_cast<float>(x / total_weight);
  }
  return out;
}

std::vector<float> EmbedTuple(const EmbeddingStore& words,
                              data::RowView row, Composition method,
                              const SifWeights& sif) {
  std::vector<std::string> tokens;
  for (size_t c = 0; c < row.size(); ++c) {
    if (row.is_null(c)) continue;
    for (std::string& tok : text::Tokenize(row.Text(c))) {
      tokens.push_back(std::move(tok));
    }
  }
  return EmbedTokens(words, tokens, method, sif);
}

std::vector<float> EmbedColumn(const EmbeddingStore& words,
                               const data::Table& table, size_t column,
                               Composition method, const SifWeights& sif) {
  std::vector<std::string> tokens =
      text::Tokenize(table.schema().column(column).name);
  for (const data::Value& v : table.DistinctColumnValues(column)) {
    for (std::string& tok : text::Tokenize(v.ToString())) {
      tokens.push_back(std::move(tok));
    }
  }
  return EmbedTokens(words, tokens, method, sif);
}

std::vector<float> EmbedTable(const EmbeddingStore& words,
                              const data::Table& table, Composition method,
                              const SifWeights& sif) {
  std::vector<float> out(words.dim(), 0.0f);
  if (table.num_columns() == 0) return out;
  size_t counted = 0;
  for (size_t c = 0; c < table.num_columns(); ++c) {
    std::vector<float> col = EmbedColumn(words, table, c, method, sif);
    double norm = 0.0;
    for (float x : col) norm += static_cast<double>(x) * x;
    if (norm == 0.0) continue;
    for (size_t i = 0; i < out.size(); ++i) out[i] += col[i];
    ++counted;
  }
  if (counted > 0) {
    for (float& x : out) x /= static_cast<float>(counted);
  }
  return out;
}

}  // namespace autodc::embedding
