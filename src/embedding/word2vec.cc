#include "src/embedding/word2vec.h"

#include "src/text/tokenizer.h"

namespace autodc::embedding {

namespace {

// Shared pipeline: vocab -> id sequences -> SGNS -> store.
EmbeddingStore TrainFromTokenSequences(
    const std::vector<std::vector<std::string>>& sentences,
    const Word2VecConfig& config) {
  text::Vocabulary vocab;
  for (const auto& s : sentences) vocab.AddAll(s);
  if (config.min_count > 1) vocab.PruneRare(config.min_count);

  std::vector<std::vector<size_t>> sequences;
  sequences.reserve(sentences.size());
  for (const auto& s : sentences) {
    std::vector<size_t> seq;
    seq.reserve(s.size());
    for (const std::string& tok : s) {
      int64_t id = vocab.IdOf(tok);
      if (id >= 0) seq.push_back(static_cast<size_t>(id));
    }
    if (seq.size() >= 2) sequences.push_back(std::move(seq));
  }

  SgnsModel model(vocab.size(), config.sgns);
  model.Train(sequences, vocab.UnigramWeights(0.75));

  EmbeddingStore store(config.sgns.dim);
  for (size_t id = 0; id < vocab.size(); ++id) {
    store.Add(vocab.TokenOf(id), model.VectorOf(id)).ok();
  }
  if (config.center_and_normalize) store.CenterAndNormalize();
  return store;
}

}  // namespace

EmbeddingStore TrainWordEmbeddings(
    const std::vector<std::vector<std::string>>& sentences,
    const Word2VecConfig& config) {
  return TrainFromTokenSequences(sentences, config);
}

EmbeddingStore TrainCellEmbeddingsNaive(
    const std::vector<const data::Table*>& tables,
    const Word2VecConfig& config) {
  std::vector<std::vector<std::string>> sentences;
  for (const data::Table* t : tables) {
    for (size_t r = 0; r < t->num_rows(); ++r) {
      std::vector<std::string> sentence;
      for (size_t c = 0; c < t->num_columns(); ++c) {
        const data::Value& v = t->at(r, c);
        if (!v.is_null()) sentence.push_back(v.ToString());
      }
      if (!sentence.empty()) sentences.push_back(std::move(sentence));
    }
  }
  return TrainFromTokenSequences(sentences, config);
}

EmbeddingStore TrainWordEmbeddingsFromTables(
    const std::vector<const data::Table*>& tables,
    const Word2VecConfig& config) {
  std::vector<std::vector<std::string>> sentences;
  for (const data::Table* t : tables) {
    for (size_t r = 0; r < t->num_rows(); ++r) {
      std::vector<std::string> sentence;
      for (size_t c = 0; c < t->num_columns(); ++c) {
        const data::Value& v = t->at(r, c);
        if (v.is_null()) continue;
        for (std::string& tok : text::Tokenize(v.ToString())) {
          sentence.push_back(std::move(tok));
        }
      }
      if (!sentence.empty()) sentences.push_back(std::move(sentence));
    }
  }
  return TrainFromTokenSequences(sentences, config);
}

}  // namespace autodc::embedding
