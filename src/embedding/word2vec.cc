#include "src/embedding/word2vec.h"

#include "src/text/tokenizer.h"

namespace autodc::embedding {

namespace {

// Shared pipeline: vocab -> id sequences -> SGNS -> store.
EmbeddingStore TrainFromTokenSequences(
    const std::vector<std::vector<std::string>>& sentences,
    const Word2VecConfig& config) {
  text::Vocabulary vocab;
  for (const auto& s : sentences) vocab.AddAll(s);
  if (config.min_count > 1) vocab.PruneRare(config.min_count);

  std::vector<std::vector<size_t>> sequences;
  sequences.reserve(sentences.size());
  for (const auto& s : sentences) {
    std::vector<size_t> seq;
    seq.reserve(s.size());
    for (const std::string& tok : s) {
      int64_t id = vocab.IdOf(tok);
      if (id >= 0) seq.push_back(static_cast<size_t>(id));
    }
    if (seq.size() >= 2) sequences.push_back(std::move(seq));
  }

  SgnsModel model(vocab.size(), config.sgns);
  model.Train(sequences, vocab.UnigramWeights(0.75));

  EmbeddingStore store(config.sgns.dim);
  for (size_t id = 0; id < vocab.size(); ++id) {
    store.Add(vocab.TokenOf(id), model.VectorOf(id)).ok();
  }
  if (config.center_and_normalize) store.CenterAndNormalize();
  return store;
}

}  // namespace

EmbeddingStore TrainWordEmbeddings(
    const std::vector<std::vector<std::string>>& sentences,
    const Word2VecConfig& config) {
  return TrainFromTokenSequences(sentences, config);
}

EmbeddingStore TrainCellEmbeddingsNaive(
    const std::vector<const data::Table*>& tables,
    const Word2VecConfig& config) {
  std::vector<std::vector<std::string>> sentences;
  for (const data::Table* t : tables) {
    for (size_t r = 0; r < t->num_rows(); ++r) {
      std::vector<std::string> sentence;
      for (size_t c = 0; c < t->num_columns(); ++c) {
        if (!t->IsNull(r, c)) sentence.push_back(t->CellText(r, c));
      }
      if (!sentence.empty()) sentences.push_back(std::move(sentence));
    }
  }
  return TrainFromTokenSequences(sentences, config);
}

EmbeddingStore TrainWordEmbeddingsFromTables(
    const std::vector<const data::Table*>& tables,
    const Word2VecConfig& config) {
  std::vector<std::vector<std::string>> sentences;
  for (const data::Table* t : tables) {
    size_t ncols = t->num_columns();
    // Uniform string columns tokenize each DISTINCT value once (keyed by
    // dictionary code) instead of once per cell. The token stream is
    // emitted in row-major order either way, so the sentences — and
    // therefore the trained vectors — are identical to the naive loop.
    std::vector<std::vector<std::vector<std::string>>> cached(ncols);
    std::vector<std::vector<char>> done(ncols);
    std::vector<char> fast(ncols, 0);
    if (t->ChunkScannable()) {
      for (size_t c = 0; c < ncols; ++c) {
        if (t->ColumnUniform(c) &&
            t->storage_type(c) == data::ValueType::kString) {
          fast[c] = 1;
          cached[c].resize(t->dict(c).size());
          done[c].assign(t->dict(c).size(), 0);
        }
      }
    }
    for (size_t r = 0; r < t->num_rows(); ++r) {
      std::vector<std::string> sentence;
      for (size_t c = 0; c < ncols; ++c) {
        if (t->IsNull(r, c)) continue;
        if (fast[c]) {
          uint32_t code = t->DictCode(r, c);
          if (!done[c][code]) {
            cached[c][code] =
                text::Tokenize(std::string(t->dict(c).str(code)));
            done[c][code] = 1;
          }
          for (const std::string& tok : cached[c][code]) {
            sentence.push_back(tok);
          }
        } else {
          for (std::string& tok : text::Tokenize(t->CellText(r, c))) {
            sentence.push_back(std::move(tok));
          }
        }
      }
      if (!sentence.empty()) sentences.push_back(std::move(sentence));
    }
  }
  return TrainFromTokenSequences(sentences, config);
}

}  // namespace autodc::embedding
