#ifndef AUTODC_EMBEDDING_SGNS_H_
#define AUTODC_EMBEDDING_SGNS_H_

#include <cstdint>
#include <vector>

#include "src/common/rng.h"
#include "src/nn/tensor.h"

namespace autodc::embedding {

/// Hyperparameters of skip-gram with negative sampling (word2vec [40]).
struct SgnsConfig {
  size_t dim = 32;          ///< embedding dimensionality
  size_t window = 4;        ///< max context offset W (Sec. 3.1 limitation 2)
  size_t negatives = 5;     ///< negative samples per positive pair
  size_t epochs = 5;
  double learning_rate = 0.025;
  uint64_t seed = 42;
  /// When true (default) the final vector of a token is the average of
  /// its center and context vectors. Pure center vectors only align for
  /// tokens with *shared contexts*; averaging additionally aligns tokens
  /// that *directly co-occur* — exactly the "(Brazil, Brasilia) become
  /// similar" behaviour Sec. 3.1 describes for cell embeddings.
  bool average_in_out = true;
  /// Training worker count. 1 (default) is the bit-exact serial path —
  /// identical RNG consumption and update order on every run, which the
  /// determinism-sensitive tests rely on. >1 trains Hogwild-style [word2vec]:
  /// sequences are sharded across workers that update the shared
  /// embedding matrices lock-free; per-worker RNGs are seeded from
  /// (seed, worker id), so each worker's sample stream is deterministic
  /// even though update interleaving is not. 0 means "use the global
  /// autodc runtime thread count".
  size_t num_threads = 1;
};

/// Skip-gram-with-negative-sampling trainer over sequences of dense token
/// ids. This is the shared training core behind word embeddings (tuples
/// as documents) and graph embeddings (random walks as sentences), so the
/// Figure-3/Figure-4 comparisons differ only in the corpus fed in.
class SgnsModel {
 public:
  SgnsModel(size_t vocab_size, const SgnsConfig& config);

  /// Trains on the corpus. `negative_weights` is the (unnormalized)
  /// distribution negatives are drawn from — typically unigram^0.75.
  /// Returns the mean logistic loss of the final epoch.
  double Train(const std::vector<std::vector<size_t>>& sequences,
               const std::vector<double>& negative_weights);

  /// Input ("center") vector of a token (copies; Row() is the zero-copy
  /// accessor for hot loops).
  std::vector<float> VectorOf(size_t id) const {
    return std::vector<float>(in_.begin() + id * config_.dim,
                              in_.begin() + (id + 1) * config_.dim);
  }
  /// Non-owning view of a token's center vector; valid until the model
  /// is destroyed or trained again.
  nn::RowView Row(size_t id) const {
    return {in_.data() + id * config_.dim, config_.dim};
  }

  size_t vocab_size() const { return vocab_size_; }
  size_t dim() const { return config_.dim; }
  const SgnsConfig& config() const { return config_; }

 private:
  // One (center, context) update with negative sampling; returns loss.
  // `rng` is the calling worker's generator (the shared rng_ when
  // serial); `scratch` is the caller's dim-sized center-update buffer
  // (reused across pairs to avoid per-pair allocation).
  double UpdatePair(size_t center, size_t context, double lr, Rng* rng,
                    float* scratch);

  // Trains every pair of `sequences[begin, end)` at learning rate `lr`
  // using `rng`; accumulates the pair count into *pairs. Shared by the
  // serial path (whole range, rng_) and each Hogwild shard.
  double TrainRange(const std::vector<std::vector<size_t>>& sequences,
                    size_t begin, size_t end, double lr, Rng* rng,
                    size_t* pairs);

  SgnsConfig config_;
  Rng rng_;
  size_t vocab_size_;
  // Flat vocab x dim matrices (row-major). Flat storage keeps every
  // vector contiguous with its neighbours for the SIMD kernels and
  // drops the pointer-chasing of the old vector-of-vectors layout.
  std::vector<float> in_;   ///< center vectors (the output)
  std::vector<float> out_;  ///< context vectors
  std::vector<size_t> negative_table_;   ///< pre-built sampling table
};

}  // namespace autodc::embedding

#endif  // AUTODC_EMBEDDING_SGNS_H_
