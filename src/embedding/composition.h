#ifndef AUTODC_EMBEDDING_COMPOSITION_H_
#define AUTODC_EMBEDDING_COMPOSITION_H_

#include <string>
#include <vector>

#include "src/data/table.h"
#include "src/embedding/embedding_store.h"
#include "src/text/vocabulary.h"

namespace autodc::embedding {

/// Composition strategies for building tuple/column/table vectors from
/// word vectors (Sec. 3.1 "Compositional Distributed Representations").
/// kAverage is the paper's "common approach"; kSifWeighted downweights
/// frequent tokens (smooth inverse frequency); the LSTM composition lives
/// in er::DeepEr since it is trainable.
enum class Composition { kAverage = 0, kSifWeighted };

/// Optional token-frequency statistics for SIF weighting.
struct SifWeights {
  const text::Vocabulary* vocabulary = nullptr;
  double a = 1e-3;  ///< SIF smoothing constant
  /// fastText-style subword fallback: tokens missing from the store or
  /// seen fewer than this many times are embedded as the normalized sum
  /// of deterministic trigram-hash vectors instead of their (unreliable)
  /// learned vector. Dirty variants like "1234" vs "12334" then embed
  /// close together, which learned rare-token vectors cannot provide.
  /// 0 disables the fallback for in-vocabulary tokens (missing tokens are
  /// simply skipped).
  uint64_t trigram_fallback_below = 0;
};

/// Deterministic pseudo-embedding of a token from hashed character
/// trigrams (no training). Two tokens sharing most trigrams get highly
/// similar vectors.
std::vector<float> TrigramHashVector(const std::string& token, size_t dim);

/// Embeds a list of word tokens by (weighted-)averaging their word
/// vectors; unknown tokens are skipped. Returns the zero vector if no
/// token is known.
std::vector<float> EmbedTokens(const EmbeddingStore& words,
                               const std::vector<std::string>& tokens,
                               Composition method = Composition::kAverage,
                               const SifWeights& sif = {});

/// Tuple2Vec: tokenizes every cell of the row and composes (Sec. 3.1).
std::vector<float> EmbedTuple(const EmbeddingStore& words,
                              data::RowView row,
                              Composition method = Composition::kAverage,
                              const SifWeights& sif = {});

/// Column2Vec: composes over the column's distinct values (plus the
/// column name, which carries schema-level signal for schema matching).
std::vector<float> EmbedColumn(const EmbeddingStore& words,
                               const data::Table& table, size_t column,
                               Composition method = Composition::kAverage,
                               const SifWeights& sif = {});

/// Table2Vec: average of the table's column embeddings.
std::vector<float> EmbedTable(const EmbeddingStore& words,
                              const data::Table& table,
                              Composition method = Composition::kAverage,
                              const SifWeights& sif = {});

}  // namespace autodc::embedding

#endif  // AUTODC_EMBEDDING_COMPOSITION_H_
