#ifndef AUTODC_EMBEDDING_WORD2VEC_H_
#define AUTODC_EMBEDDING_WORD2VEC_H_

#include <string>
#include <vector>

#include "src/data/table.h"
#include "src/embedding/embedding_store.h"
#include "src/embedding/sgns.h"
#include "src/text/vocabulary.h"

namespace autodc::embedding {

struct Word2VecConfig {
  SgnsConfig sgns;
  size_t min_count = 1;  ///< drop tokens rarer than this
  /// Apply common-component removal + L2 normalization to the finished
  /// store (recommended for small corpora; see
  /// EmbeddingStore::CenterAndNormalize).
  bool center_and_normalize = true;
};

/// Trains word embeddings over a plain text corpus (one token list per
/// sentence) and exposes them as an EmbeddingStore.
EmbeddingStore TrainWordEmbeddings(
    const std::vector<std::vector<std::string>>& sentences,
    const Word2VecConfig& config = {});

/// The naive tuples-as-documents adaptation of Sec. 3.1: each row of each
/// table becomes a "sentence" whose words are the cells' string values
/// (cell text is used verbatim as one token, qualified by nothing —
/// exactly the naive scheme whose limitations the paper enumerates).
/// Returns one embedding per distinct cell value.
EmbeddingStore TrainCellEmbeddingsNaive(
    const std::vector<const data::Table*>& tables,
    const Word2VecConfig& config = {});

/// Tokenized variant used for textual attributes: rows become sentences
/// of word tokens from every cell, giving word-level vectors that
/// compositional tuple embeddings are built from.
EmbeddingStore TrainWordEmbeddingsFromTables(
    const std::vector<const data::Table*>& tables,
    const Word2VecConfig& config = {});

}  // namespace autodc::embedding

#endif  // AUTODC_EMBEDDING_WORD2VEC_H_
