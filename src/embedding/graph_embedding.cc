#include "src/embedding/graph_embedding.h"

namespace autodc::embedding {

std::vector<std::vector<size_t>> GenerateWalks(
    const data::TableGraph& graph, const GraphEmbeddingConfig& config) {
  Rng rng(config.seed);
  std::vector<std::vector<size_t>> walks;
  walks.reserve(graph.num_nodes() * config.walks_per_node);
  std::vector<double> weights;
  for (size_t start = 0; start < graph.num_nodes(); ++start) {
    for (size_t w = 0; w < config.walks_per_node; ++w) {
      std::vector<size_t> walk = {start};
      size_t cur = start;
      for (size_t step = 1; step < config.walk_length; ++step) {
        const std::vector<size_t>& nbrs = graph.Neighbors(cur);
        if (nbrs.empty()) break;
        const std::vector<size_t>& edge_ids = graph.NeighborEdges(cur);
        weights.clear();
        weights.reserve(nbrs.size());
        for (size_t ei : edge_ids) {
          const data::TableGraph::Edge& e = graph.edges()[ei];
          double wgt = e.weight;
          if (e.kind == data::EdgeKind::kFunctionalDependency) {
            wgt *= config.fd_edge_boost;
          }
          weights.push_back(wgt);
        }
        cur = nbrs[rng.Categorical(weights)];
        walk.push_back(cur);
      }
      walks.push_back(std::move(walk));
    }
  }
  return walks;
}

std::string GraphNodeKey(const data::Schema& schema, size_t column,
                         const std::string& value) {
  return schema.column(column).name + ":" + value;
}

EmbeddingStore TrainTableGraphEmbeddings(const data::TableGraph& graph,
                                         const data::Schema& schema,
                                         const GraphEmbeddingConfig& config) {
  std::vector<std::vector<size_t>> walks = GenerateWalks(graph, config);
  SgnsModel model(graph.num_nodes(), config.sgns);
  // Negatives drawn uniformly over nodes (walk corpora are already
  // frequency-weighted by degree).
  std::vector<double> uniform(graph.num_nodes(), 1.0);
  model.Train(walks, uniform);

  EmbeddingStore store(config.sgns.dim);
  for (size_t i = 0; i < graph.num_nodes(); ++i) {
    const data::TableGraph::Node& n = graph.node(i);
    store.Add(GraphNodeKey(schema, n.column, n.value), model.VectorOf(i))
        .ok();
  }
  return store;
}

}  // namespace autodc::embedding
