#ifndef AUTODC_SERVE_FINGERPRINT_H_
#define AUTODC_SERVE_FINGERPRINT_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "src/common/result.h"
#include "src/data/table.h"

// Content fingerprints keying the server's session/model cache: two
// tenants pointing at byte-identical datasets share one trained model
// zoo, and a changed file gets a fresh session instead of stale models.
namespace autodc::serve {

inline constexpr uint64_t kFnvOffset = 14695981039346656037ULL;

/// FNV-1a 64 over a byte span, chainable via `state`.
uint64_t FingerprintBytes(const void* data, size_t n,
                          uint64_t state = kFnvOffset);

/// Fingerprint of a file's bytes (streamed; O(chunk) memory). The key
/// for sessions opened from ADCT table files.
Result<uint64_t> FingerprintFile(const std::string& path);

/// Fingerprint of a table's logical content: schema (names + declared
/// types) and every cell (null markers + canonical text), row-major.
/// Selection/projection views hash as what they show, so a view and its
/// Compact()ed copy collide — deliberately.
uint64_t FingerprintTable(const data::Table& table);

}  // namespace autodc::serve

#endif  // AUTODC_SERVE_FINGERPRINT_H_
