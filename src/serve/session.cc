#include "src/serve/session.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <string>
#include <utility>

#include "src/common/status.h"

namespace autodc::serve {

namespace {

std::string RowKey(size_t row) { return "row:" + std::to_string(row); }

ServeResponse ErrorResponse(std::string message) {
  ServeResponse resp;
  resp.status = ServeStatus::kError;
  resp.message = std::move(message);
  return resp;
}

}  // namespace

Result<std::shared_ptr<Session>> Session::Build(data::Table table,
                                                uint64_t fingerprint,
                                                const SessionConfig& config) {
  if (table.num_rows() == 0 || table.num_columns() == 0) {
    return Status::InvalidArgument(
        "session requires a non-empty table (rows and columns)");
  }
  auto s = std::shared_ptr<Session>(new Session());
  s->table_ = std::move(table);
  s->fingerprint_ = fingerprint;
  s->config_ = config;

  s->encoder_.Fit(s->table_);
  if (s->encoder_.dim() == 0) {
    return Status::InvalidArgument("table encodes to zero dimensions");
  }
  s->encoded_ = s->encoder_.EncodeAll(s->table_);

  // Weak-supervised match scorer over |enc(a) - enc(b)| distance
  // features: a row is a certain match of itself (zero feature vector),
  // a random other row is a near-certain non-match. A few epochs suffice
  // — the decision surface is "small encoded distance => match".
  s->rng_ = std::make_unique<Rng>(config.seed);
  nn::ClassifierConfig cc;
  cc.input_dim = s->encoder_.dim();
  cc.hidden = config.scorer_hidden;
  s->scorer_ = std::make_unique<nn::BinaryClassifier>(cc, s->rng_.get());
  size_t n = s->table_.num_rows();
  std::vector<size_t> sample =
      s->rng_->SampleIndices(n, std::min(config.max_train_rows, n));
  nn::Batch features;
  std::vector<int> labels;
  features.reserve(sample.size() * 2);
  labels.reserve(sample.size() * 2);
  for (size_t i : sample) {
    features.push_back(s->PairFeature(i, i));
    labels.push_back(1);
    if (n > 1) {
      size_t j = static_cast<size_t>(
          s->rng_->UniformInt(0, static_cast<int64_t>(n) - 2));
      if (j >= i) ++j;
      features.push_back(s->PairFeature(i, j));
      labels.push_back(0);
    }
  }
  s->scorer_->Train(features, labels, config.scorer_epochs,
                    config.scorer_batch);

  s->imputer_ = cleaning::KnnImputer(config.knn_k);
  s->imputer_.Fit(s->table_);
  s->RecomputeColumnStats();

  s->store_ = embedding::EmbeddingStore(s->encoder_.dim());
  for (size_t i = 0; i < n; ++i) {
    AUTODC_RETURN_NOT_OK(s->store_.Add(RowKey(i), s->encoded_[i]));
  }
  if (config.ann) {
    AUTODC_RETURN_NOT_OK(s->store_.EnableAnn());
  }
  return s;
}

std::vector<float> Session::PairFeature(size_t a, size_t b) const {
  const std::vector<float>& ea = encoded_[a];
  const std::vector<float>& eb = encoded_[b];
  std::vector<float> f(ea.size());
  for (size_t i = 0; i < f.size(); ++i) f[i] = std::fabs(ea[i] - eb[i]);
  return f;
}

ServeResponse Session::Execute(const ServeRequest& req) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return ExecuteLocked(req);
}

std::vector<ServeResponse> Session::ExecuteBatch(
    const std::vector<const ServeRequest*>& reqs) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::vector<ServeResponse> out(reqs.size());
  // kScorePair requests coalesce into one batched forward — the Gemm
  // amortization micro-batching exists for. Everything else (and
  // out-of-range pairs, which must error exactly like the sequential
  // path) runs per-item.
  std::vector<size_t> pair_slots;
  size_t n = table_.num_rows();
  for (size_t i = 0; i < reqs.size(); ++i) {
    const ServeRequest& r = *reqs[i];
    if (r.kind == RequestKind::kScorePair && r.row_a < n && r.row_b < n) {
      pair_slots.push_back(i);
    } else {
      out[i] = ExecuteLocked(r);
    }
  }
  if (!pair_slots.empty()) {
    nn::Batch features;
    features.reserve(pair_slots.size());
    for (size_t i : pair_slots) {
      features.push_back(PairFeature(reqs[i]->row_a, reqs[i]->row_b));
    }
    std::vector<double> probs = scorer_->PredictProbaBatch(features);
    for (size_t j = 0; j < pair_slots.size(); ++j) {
      out[pair_slots[j]].score = probs[j];
    }
  }
  return out;
}

ServeResponse Session::ExecuteLocked(const ServeRequest& req) const {
  ServeResponse resp;
  size_t n = table_.num_rows();
  size_t cols = table_.num_columns();
  switch (req.kind) {
    case RequestKind::kScorePair: {
      if (req.row_a >= n || req.row_b >= n) {
        return ErrorResponse("score_pair: row out of range");
      }
      resp.score = scorer_->PredictProba(PairFeature(req.row_a, req.row_b));
      return resp;
    }
    case RequestKind::kImpute: {
      if (req.row_a >= n || req.col >= cols) {
        return ErrorResponse("impute: cell out of range");
      }
      resp.value = imputer_.Impute(table_, req.row_a, req.col).ToString();
      return resp;
    }
    case RequestKind::kOutlierCheck: {
      if (req.row_a >= n || req.col >= cols) {
        return ErrorResponse("outlier_check: cell out of range");
      }
      if (!numeric_[req.col]) {
        return ErrorResponse("outlier_check: non-numeric column");
      }
      if (table_.IsNull(req.row_a, req.col)) return resp;  // null: not flagged
      bool ok = false;
      double v = table_.at(req.row_a, req.col).ToNumeric(&ok);
      // Degenerate stats (no observed values, or zero spread) flag
      // nothing — the 0-row guard, not a NaN.
      if (ok && col_stddev_[req.col] > 0.0) {
        resp.score = std::fabs(v - col_mean_[req.col]) / col_stddev_[req.col];
        resp.flagged = resp.score > config_.outlier_threshold;
      }
      return resp;
    }
    case RequestKind::kNearestRows: {
      if (req.row_a >= n) return ErrorResponse("nearest_rows: row out of range");
      auto r = store_.Nearest(RowKey(req.row_a), req.k);
      if (!r.ok()) return ErrorResponse(r.status().ToString());
      for (const embedding::Neighbor& nb : r.ValueOrDie()) {
        RowNeighbor out;
        out.row = static_cast<size_t>(
            std::strtoull(nb.key.c_str() + 4, nullptr, 10));
        out.similarity = nb.similarity;
        resp.neighbors.push_back(out);
      }
      return resp;
    }
  }
  return ErrorResponse("unknown request kind");
}

Status Session::Update(size_t row, size_t col, data::Value v) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (row >= table_.num_rows() || col >= table_.num_columns()) {
    return Status::OutOfRange("Update: cell out of range");
  }
  table_.Set(row, col, std::move(v));
  return Status::OK();
}

Status Session::Refresh() {
  std::unique_lock<std::shared_mutex> lock(mu_);
  encoded_ = encoder_.EncodeAll(table_);
  for (size_t i = 0; i < encoded_.size(); ++i) {
    AUTODC_RETURN_NOT_OK(store_.Add(RowKey(i), encoded_[i]));
  }
  // The overwrites above left the ANN index stale (exact-scan
  // fallback); recover sub-linear retrieval in place. A store that
  // never had an index (config.ann = false) reports FailedPrecondition
  // — that is its steady state, not a refresh failure.
  Status rebuilt = store_.RebuildAnn();
  if (!rebuilt.ok() && rebuilt.code() != StatusCode::kFailedPrecondition) {
    return rebuilt;
  }
  imputer_.Fit(table_);
  RecomputeColumnStats();
  return Status::OK();
}

void Session::RecomputeColumnStats() {
  size_t cols = table_.num_columns();
  size_t n = table_.num_rows();
  numeric_.assign(cols, false);
  col_mean_.assign(cols, 0.0);
  col_stddev_.assign(cols, 0.0);
  for (size_t c = 0; c < cols; ++c) {
    if (!encoder_.IsNumeric(c)) continue;
    numeric_[c] = true;
    double sum = 0.0;
    size_t cnt = 0;
    for (size_t r = 0; r < n; ++r) {
      if (table_.IsNull(r, c)) continue;
      bool ok = false;
      double v = table_.at(r, c).ToNumeric(&ok);
      if (ok) {
        sum += v;
        ++cnt;
      }
    }
    if (cnt == 0) continue;  // mean/stddev stay 0: nothing ever flags
    double mean = sum / static_cast<double>(cnt);
    double ss = 0.0;
    for (size_t r = 0; r < n; ++r) {
      if (table_.IsNull(r, c)) continue;
      bool ok = false;
      double v = table_.at(r, c).ToNumeric(&ok);
      if (ok) ss += (v - mean) * (v - mean);
    }
    col_mean_[c] = mean;
    col_stddev_[c] = std::sqrt(ss / static_cast<double>(cnt));
  }
}

}  // namespace autodc::serve
