#include "src/serve/fingerprint.h"

#include <fstream>
#include <vector>

namespace autodc::serve {

namespace {

constexpr uint64_t kFnvPrime = 1099511628211ULL;

/// Length-prefixes a string into the hash so concatenation is
/// unambiguous ("ab","c" vs "a","bc").
uint64_t HashString(const std::string& s, uint64_t state) {
  uint64_t len = s.size();
  state = FingerprintBytes(&len, sizeof(len), state);
  return FingerprintBytes(s.data(), s.size(), state);
}

}  // namespace

uint64_t FingerprintBytes(const void* data, size_t n, uint64_t state) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < n; ++i) {
    state ^= p[i];
    state *= kFnvPrime;
  }
  return state;
}

Result<uint64_t> FingerprintFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open '" + path + "'");
  uint64_t state = kFnvOffset;
  std::vector<char> buf(size_t{1} << 20);
  while (in) {
    in.read(buf.data(), static_cast<std::streamsize>(buf.size()));
    std::streamsize got = in.gcount();
    if (got > 0) {
      state = FingerprintBytes(buf.data(), static_cast<size_t>(got), state);
    }
  }
  if (in.bad()) return Status::IoError("read failed for '" + path + "'");
  return state;
}

uint64_t FingerprintTable(const data::Table& table) {
  uint64_t state = kFnvOffset;
  size_t cols = table.num_columns();
  size_t rows = table.num_rows();
  state = FingerprintBytes(&cols, sizeof(cols), state);
  state = FingerprintBytes(&rows, sizeof(rows), state);
  for (size_t c = 0; c < cols; ++c) {
    const data::Column& col = table.schema().column(c);
    state = HashString(col.name, state);
    auto type = static_cast<uint8_t>(col.type);
    state = FingerprintBytes(&type, sizeof(type), state);
  }
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) {
      uint8_t null = table.IsNull(r, c) ? 1 : 0;
      state = FingerprintBytes(&null, sizeof(null), state);
      if (!null) state = HashString(table.CellText(r, c), state);
    }
  }
  return state;
}

}  // namespace autodc::serve
