#ifndef AUTODC_SERVE_SERVER_H_
#define AUTODC_SERVE_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/common/result.h"
#include "src/data/table.h"
#include "src/obs/trace.h"
#include "src/serve/request.h"
#include "src/serve/session.h"
#include "src/serve/session_cache.h"

namespace autodc::serve {

/// Server shape: queue bound, micro-batch flush policy, admission caps,
/// session cache size. ServeConfigFromEnv() reads the AUTODC_SERVE_*
/// knobs documented in the README.
struct ServeConfig {
  /// Worker threads draining the queue. The server owns its workers
  /// (the global ThreadPool may legitimately have zero).
  size_t threads = 1;
  /// Bounded request-queue depth; submissions past it are rejected
  /// with kRejectedQueueFull (backpressure, never unbounded memory).
  size_t queue_cap = 1024;
  /// Micro-batch flush size: a worker coalesces up to this many
  /// same-(session, kind) requests into one batched forward.
  size_t batch_max = 32;
  /// Deadline flush: a worker holds the oldest request at most this
  /// long waiting for the batch to fill. 0 = flush immediately.
  size_t batch_wait_us = 200;
  /// Per-tenant admitted-but-incomplete cap; past it submissions get
  /// kRejectedTenantCap.
  size_t tenant_inflight_cap = 256;
  /// LRU slots in the session/model cache.
  size_t session_capacity = 8;
  /// Fraction of admitted requests that get a request-scoped trace
  /// (admission → batch → execute spans under one trace id). 0 = off
  /// (the default: tracing every request costs real QPS), 1 = all.
  double trace_sample = 0.0;
  /// Per-worker completed-span buffer capacity (0 = the library
  /// default, obs::kSpanBufferCap). Sized so a full bench_serve run at
  /// trace_sample=1 drops zero spans.
  size_t worker_span_buffer = 65536;
  SessionConfig session;
};

/// ServeConfig from AUTODC_SERVE_THREADS, AUTODC_SERVE_QUEUE_CAP,
/// AUTODC_SERVE_BATCH_MAX, AUTODC_SERVE_BATCH_WAIT_US,
/// AUTODC_SERVE_TENANT_CAP, AUTODC_SERVE_SESSIONS,
/// AUTODC_SERVE_TRACE_SAMPLE, AUTODC_SERVE_SPAN_BUFFER (defaults above).
ServeConfig ServeConfigFromEnv();

/// Completion handle for one Submit/SubmitMany call: responses land
/// positionally (response i answers request i), and Wait() blocks until
/// every slot — admitted, rejected, or shutdown-flushed — is filled.
/// One handle serves a whole client window, so a pipelined client pays
/// one wakeup per window rather than one per request.
class PendingBatch {
 public:
  /// Blocks until all responses are in, then returns them.
  const std::vector<ServeResponse>& Wait();
  bool Ready() const;

 private:
  friend class CurationServer;
  explicit PendingBatch(size_t n) : remaining_(n), responses_(n) {}
  void CompleteSlot(size_t slot, ServeResponse&& resp);
  /// Fills `count` slots under one lock — a worker finishing a batch
  /// pays one lock per (group, run), not one per request.
  void CompleteSlots(const size_t* slots, ServeResponse* resps, size_t count);

  mutable std::mutex mu_;
  std::condition_variable cv_;
  size_t remaining_;
  std::vector<ServeResponse> responses_;
};

/// The long-running, multi-tenant curation server (DESIGN.md §13):
/// bounded MPMC queue → micro-batcher → worker threads → per-dataset
/// session cache. Thread-safe throughout; destruction stops the server
/// (in-flight batches drain, queued requests get kShutdown).
class CurationServer {
 public:
  explicit CurationServer(const ServeConfig& config);
  CurationServer() : CurationServer(ServeConfigFromEnv()) {}
  ~CurationServer();

  CurationServer(const CurationServer&) = delete;
  CurationServer& operator=(const CurationServer&) = delete;

  /// Opens (or re-finds) a session for an ADCT table file, keyed on the
  /// file's content fingerprint. A second open of byte-identical data
  /// is a cache hit — no rebuild.
  Result<uint64_t> OpenSession(const std::string& adct_path);
  /// Same, from an in-memory table (fingerprint of its logical content).
  Result<uint64_t> OpenSessionFromTable(const data::Table& table);

  /// The cached session, or null (evicted / never opened).
  std::shared_ptr<Session> FindSession(uint64_t fingerprint);

  /// Re-syncs a session's serving state after updates (re-encode,
  /// embedding overwrite, ANN rebuild — see Session::Refresh).
  Status RefreshSession(uint64_t fingerprint);

  /// Enqueues one request. Admission control may settle it immediately
  /// (typed reject); otherwise a worker completes it.
  std::shared_ptr<PendingBatch> Submit(const ServeRequest& request);
  /// Enqueues a window of requests under one completion handle. Each
  /// request is admitted independently — a window may come back with a
  /// mix of kOk and typed rejects.
  std::shared_ptr<PendingBatch> SubmitMany(
      const std::vector<ServeRequest>& requests);

  /// Executes a request inline on the unbatched sequential path — no
  /// queue, no coalescing. The correctness oracle for the batched path
  /// (results must be byte-identical) and the single-threaded QPS
  /// baseline bench_serve measures against.
  ServeResponse ExecuteSequential(const ServeRequest& request);

  /// Stops the server: workers finish the batch they are executing
  /// (in-flight work drains), everything still queued completes with
  /// kShutdown, workers join. Idempotent; later submissions are
  /// settled immediately with kShutdown.
  void Stop();
  bool stopped() const { return stopped_.load(std::memory_order_acquire); }

  const ServeConfig& config() const { return config_; }
  SessionCache& sessions() { return sessions_; }

  struct Stats {
    uint64_t admitted = 0;
    uint64_t rejected_queue_full = 0;
    uint64_t rejected_tenant_cap = 0;
    uint64_t shutdown_flushed = 0;
    uint64_t completed = 0;
    uint64_t batches = 0;
    /// Mean micro-batch size over all executed batches — > 1 under
    /// concurrent load is the "batching actually engaged" check.
    double MeanBatch() const {
      return batches == 0 ? 0.0
                          : static_cast<double>(completed) /
                                static_cast<double>(batches);
    }
  };
  Stats stats() const;

  /// One consistent live view of the server's internals — what obs_top
  /// renders and what an operator asks for when the server misbehaves.
  /// Cheap: one short critical section, no model or session work.
  struct DebugSnapshot {
    uint64_t queue_depth = 0;
    size_t inflight_tenants = 0;    ///< tenants with admitted work
    uint64_t inflight_requests = 0; ///< admitted-but-incomplete requests
    bool stopping = false;
    Stats stats;
    size_t sessions = 0;
    size_t session_capacity = 0;
    uint64_t session_hits = 0;
    uint64_t session_misses = 0;
    uint64_t session_evictions = 0;
    size_t threads = 0;
    size_t queue_cap = 0;
    size_t batch_max = 0;
  };
  DebugSnapshot GetDebugSnapshot();
  /// The snapshot as a one-line JSON object (common/json escaping).
  std::string DebugSnapshotJson();

 private:
  struct Item {
    ServeRequest request;
    std::shared_ptr<PendingBatch> group;
    size_t slot = 0;
    std::chrono::steady_clock::time_point enqueued;
    /// Nonzero trace_id = this request was sampled for tracing; the
    /// context is the admission span, which worker spans parent under.
    obs::TraceContext trace;
  };

  void WorkerLoop();
  /// Pops a coalesced batch off the queue (same session + kind, up to
  /// batch_max, deadline-waited). Returns false on shutdown.
  bool NextBatch(std::vector<Item>* batch);
  void ExecuteAndComplete(std::vector<Item>* batch);
  void DecrementInflight(const std::vector<Item>& batch);
  /// Deterministic stride sampling against config_.trace_sample.
  bool SampleTrace();

  ServeConfig config_;
  SessionCache sessions_;

  std::once_flag stop_once_;  ///< Stop() runs exactly once; later calls wait
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Item> queue_;
  std::unordered_map<std::string, size_t> tenant_inflight_;
  bool stopping_ = false;
  std::atomic<bool> stopped_{false};

  std::vector<std::thread> workers_;

  // Counters are written under mu_ on the submit path and from workers
  // on completion; atomics keep stats() lock-free and exact.
  std::atomic<uint64_t> admitted_{0};
  std::atomic<uint64_t> rejected_queue_full_{0};
  std::atomic<uint64_t> rejected_tenant_cap_{0};
  std::atomic<uint64_t> shutdown_flushed_{0};
  std::atomic<uint64_t> completed_{0};
  std::atomic<uint64_t> batches_{0};
  std::atomic<uint64_t> trace_seq_{0};  ///< stride-sampling sequence
};

}  // namespace autodc::serve

#endif  // AUTODC_SERVE_SERVER_H_
