#ifndef AUTODC_SERVE_SESSION_H_
#define AUTODC_SERVE_SESSION_H_

#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <vector>

#include "src/cleaning/encoding.h"
#include "src/cleaning/imputation.h"
#include "src/common/result.h"
#include "src/common/rng.h"
#include "src/data/table.h"
#include "src/embedding/embedding_store.h"
#include "src/nn/classifier.h"
#include "src/serve/request.h"

namespace autodc::serve {

/// Knobs for building a session's model zoo. Defaults are sized for
/// sub-second builds on the quick-bench datasets; the scorer head is
/// deliberately deep-and-narrow — per-call dispatch overhead dominates
/// per-row compute there, which is exactly the shape micro-batching
/// amortizes.
struct SessionConfig {
  /// Match-scorer MLP over |enc(a) - enc(b)| features.
  std::vector<size_t> scorer_hidden = {48, 32, 16};
  size_t scorer_epochs = 6;
  size_t scorer_batch = 32;
  /// Cap on rows sampled for the weak-supervised scorer training set.
  size_t max_train_rows = 256;
  size_t knn_k = 5;
  double outlier_threshold = 3.0;
  uint64_t seed = 17;
  /// Build an HNSW index over the row embeddings (kNearestRows goes
  /// sub-linear; Refresh() exercises the stale→RebuildAnn arc).
  bool ann = true;
};

/// One dataset's curation state, shared by every tenant whose data
/// fingerprints to it: the table, its encoder, cached per-row encodings,
/// a trained DeepER-style match scorer, a KNN imputer, per-column
/// z-score stats, and a row embedding store (ANN-indexed).
///
/// Thread model: Execute/ExecuteBatch take a shared lock — any number
/// run concurrently (all model state is read-only at serve time).
/// Update/Refresh take the exclusive lock. Sessions are handed out as
/// shared_ptr, so LRU eviction can never free state under an in-flight
/// batch.
class Session {
 public:
  /// Trains the model zoo on `table`. Deterministic in (table, config):
  /// a given dataset always builds the same models.
  static Result<std::shared_ptr<Session>> Build(data::Table table,
                                                uint64_t fingerprint,
                                                const SessionConfig& config = {});

  uint64_t fingerprint() const { return fingerprint_; }
  size_t num_rows() const { return table_.num_rows(); }
  size_t encoded_dim() const { return encoder_.dim(); }
  bool AnnActive() const { return store_.AnnActive(); }

  /// Executes one request on the unbatched path (PredictProba et al.) —
  /// the sequential oracle batched execution is held byte-identical to.
  ServeResponse Execute(const ServeRequest& req) const;

  /// Executes a micro-batch: kScorePair requests coalesce into one
  /// PredictProbaBatch forward; other kinds run per-item. Responses are
  /// positionally aligned with `reqs` and byte-identical to calling
  /// Execute per request.
  std::vector<ServeResponse> ExecuteBatch(
      const std::vector<const ServeRequest*>& reqs) const;

  /// Points an existing cell at a new value (exclusive lock). Serving
  /// state goes stale until Refresh().
  Status Update(size_t row, size_t col, data::Value v);

  /// Model-cache refresh after Update()s: re-encodes every row,
  /// overwrites the embedding store (which invalidates its ANN index),
  /// rebuilds the index via EmbeddingStore::RebuildAnn, re-fits the
  /// imputer, and recomputes column stats. The scorer keeps its weights.
  Status Refresh();

 private:
  Session() = default;

  ServeResponse ExecuteLocked(const ServeRequest& req) const;
  void RecomputeColumnStats();
  std::vector<float> PairFeature(size_t a, size_t b) const;

  data::Table table_;
  uint64_t fingerprint_ = 0;
  SessionConfig config_;
  cleaning::TableEncoder encoder_;
  std::vector<std::vector<float>> encoded_;  ///< cached row encodings
  std::unique_ptr<Rng> rng_;                 ///< build-time only
  std::unique_ptr<nn::BinaryClassifier> scorer_;
  cleaning::KnnImputer imputer_;
  std::vector<bool> numeric_;
  std::vector<double> col_mean_;
  std::vector<double> col_stddev_;
  embedding::EmbeddingStore store_;
  mutable std::shared_mutex mu_;
};

}  // namespace autodc::serve

#endif  // AUTODC_SERVE_SESSION_H_
