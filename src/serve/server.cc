#include "src/serve/server.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "src/common/env.h"
#include "src/common/json.h"
#include "src/data/table_file.h"
#include "src/obs/metrics.h"
#include "src/serve/fingerprint.h"

namespace autodc::serve {

namespace {

ServeResponse StatusResponse(ServeStatus status, std::string message) {
  ServeResponse resp;
  resp.status = status;
  resp.message = std::move(message);
  return resp;
}

#ifndef AUTODC_DISABLE_OBS
// The serve layer's metric handles, resolved once. Latency/wait
// histograms record MICROSECONDS and need the log-scale preset — the
// old default decade-of-ms bounds collapsed every µs-scale latency
// into one bucket, making p99 unresolvable from bucket counts. The
// labeled families break serve.completed / serve.latency_us down per
// tenant and per request kind with bounded cardinality.
//
// Direct pointer members (not the AUTODC_OBS_* macros) would break the
// zero-overhead AUTODC_DISABLE_OBS contract as server fields, so they
// live in this #ifdef'd function-local static instead.
struct ServeMetrics {
  obs::Histogram* latency_us;
  obs::Histogram* queue_wait_us;
  obs::LabeledCounter* completed_tenant;
  obs::LabeledCounter* completed_kind;
  obs::LabeledHistogram* latency_tenant;

  static const ServeMetrics& Get() {
    static const ServeMetrics m = [] {
      auto& reg = obs::MetricsRegistry::Global();
      ServeMetrics s;
      s.latency_us = reg.GetHistogram("serve.latency_us",
                                      obs::Histogram::LogBoundsUs());
      s.queue_wait_us = reg.GetHistogram("serve.queue.wait_us",
                                         obs::Histogram::LogBoundsUs());
      s.completed_tenant = reg.GetLabeledCounter("serve.completed", "tenant");
      s.completed_kind = reg.GetLabeledCounter("serve.completed", "kind");
      s.latency_tenant = reg.GetLabeledHistogram(
          "serve.latency_us", "tenant", obs::Histogram::LogBoundsUs());
      return s;
    }();
    return m;
  }
};
#endif  // !AUTODC_DISABLE_OBS

double MicrosSince(std::chrono::steady_clock::time_point since,
                   std::chrono::steady_clock::time_point now) {
  return std::chrono::duration<double, std::micro>(now - since).count();
}

}  // namespace

ServeConfig ServeConfigFromEnv() {
  ServeConfig c;
  c.threads = EnvSizeT("AUTODC_SERVE_THREADS", c.threads, 1, 256);
  c.queue_cap =
      EnvSizeT("AUTODC_SERVE_QUEUE_CAP", c.queue_cap, 1, size_t{1} << 20);
  c.batch_max = EnvSizeT("AUTODC_SERVE_BATCH_MAX", c.batch_max, 1, 4096);
  c.batch_wait_us =
      EnvSizeT("AUTODC_SERVE_BATCH_WAIT_US", c.batch_wait_us, 0, 10000000);
  c.tenant_inflight_cap = EnvSizeT("AUTODC_SERVE_TENANT_CAP",
                                   c.tenant_inflight_cap, 1, size_t{1} << 20);
  c.session_capacity =
      EnvSizeT("AUTODC_SERVE_SESSIONS", c.session_capacity, 1, 4096);
  c.trace_sample =
      EnvDouble("AUTODC_SERVE_TRACE_SAMPLE", c.trace_sample, 0.0, 1.0);
  c.worker_span_buffer = EnvSizeT("AUTODC_SERVE_SPAN_BUFFER",
                                  c.worker_span_buffer, 0, size_t{1} << 24);
  return c;
}

// ---- PendingBatch ------------------------------------------------------

const std::vector<ServeResponse>& PendingBatch::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return remaining_ == 0; });
  return responses_;
}

bool PendingBatch::Ready() const {
  std::lock_guard<std::mutex> lock(mu_);
  return remaining_ == 0;
}

void PendingBatch::CompleteSlot(size_t slot, ServeResponse&& resp) {
  bool done;
  {
    std::lock_guard<std::mutex> lock(mu_);
    responses_[slot] = std::move(resp);
    done = (--remaining_ == 0);
  }
  // One wakeup per window, not per request — the client sleeps through
  // every completion but the last.
  if (done) cv_.notify_all();
}

void PendingBatch::CompleteSlots(const size_t* slots, ServeResponse* resps,
                                 size_t count) {
  bool done;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t i = 0; i < count; ++i) {
      responses_[slots[i]] = std::move(resps[i]);
    }
    remaining_ -= count;
    done = (remaining_ == 0);
  }
  if (done) cv_.notify_all();
}

// ---- CurationServer ----------------------------------------------------

CurationServer::CurationServer(const ServeConfig& config)
    : config_(config), sessions_(std::max<size_t>(1, config.session_capacity)) {
  if (config_.threads == 0) config_.threads = 1;
  if (config_.batch_max == 0) config_.batch_max = 1;
  if (config_.queue_cap == 0) config_.queue_cap = 1;
  workers_.reserve(config_.threads);
  for (size_t i = 0; i < config_.threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

CurationServer::~CurationServer() { Stop(); }

Result<uint64_t> CurationServer::OpenSession(const std::string& adct_path) {
  auto fpr = FingerprintFile(adct_path);
  if (!fpr.ok()) return fpr.status();
  uint64_t fp = fpr.ValueOrDie();
  if (sessions_.Get(fp) != nullptr) return fp;  // byte-identical data: reuse
  auto table = data::OpenTableFile(adct_path);
  if (!table.ok()) return table.status();
  auto session =
      Session::Build(std::move(table).ValueOrDie(), fp, config_.session);
  if (!session.ok()) return session.status();
  sessions_.Put(fp, std::move(session).ValueOrDie());
  return fp;
}

Result<uint64_t> CurationServer::OpenSessionFromTable(
    const data::Table& table) {
  uint64_t fp = FingerprintTable(table);
  if (sessions_.Get(fp) != nullptr) return fp;
  auto session = Session::Build(table, fp, config_.session);
  if (!session.ok()) return session.status();
  sessions_.Put(fp, std::move(session).ValueOrDie());
  return fp;
}

std::shared_ptr<Session> CurationServer::FindSession(uint64_t fingerprint) {
  return sessions_.Get(fingerprint);
}

Status CurationServer::RefreshSession(uint64_t fingerprint) {
  std::shared_ptr<Session> session = sessions_.Get(fingerprint);
  if (session == nullptr) {
    return Status::NotFound("no session for fingerprint " +
                            std::to_string(fingerprint));
  }
  return session->Refresh();
}

std::shared_ptr<PendingBatch> CurationServer::Submit(
    const ServeRequest& request) {
  return SubmitMany({request});
}

std::shared_ptr<PendingBatch> CurationServer::SubmitMany(
    const std::vector<ServeRequest>& requests) {
  auto group =
      std::shared_ptr<PendingBatch>(new PendingBatch(requests.size()));
  size_t enqueued = 0;
  auto now = std::chrono::steady_clock::now();
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Windows are usually single-tenant; unordered_map references are
    // stable, so one lookup serves the whole run.
    size_t* inflight_slot = nullptr;
    const std::string* inflight_tenant = nullptr;
    for (size_t i = 0; i < requests.size(); ++i) {
      const ServeRequest& r = requests[i];
      if (stopping_) {
        shutdown_flushed_.fetch_add(1, std::memory_order_relaxed);
        AUTODC_OBS_INC("serve.reject.shutdown");
        group->CompleteSlot(
            i, StatusResponse(ServeStatus::kShutdown, "server stopping"));
        continue;
      }
      if (queue_.size() >= config_.queue_cap) {
        rejected_queue_full_.fetch_add(1, std::memory_order_relaxed);
        AUTODC_OBS_INC("serve.reject.queue_full");
        group->CompleteSlot(
            i, StatusResponse(ServeStatus::kRejectedQueueFull,
                              "request queue at capacity"));
        continue;
      }
      if (inflight_slot == nullptr || *inflight_tenant != r.tenant) {
        inflight_slot = &tenant_inflight_[r.tenant];
        inflight_tenant = &r.tenant;
      }
      size_t& inflight = *inflight_slot;
      if (inflight >= config_.tenant_inflight_cap) {
        rejected_tenant_cap_.fetch_add(1, std::memory_order_relaxed);
        AUTODC_OBS_INC("serve.reject.tenant_cap");
        group->CompleteSlot(
            i, StatusResponse(ServeStatus::kRejectedTenantCap,
                              "tenant in-flight cap reached"));
        continue;
      }
      ++inflight;
      ++enqueued;
      Item item{r, group, i, now, obs::TraceContext{}};
#ifndef AUTODC_DISABLE_OBS
      if (SampleTrace()) {
        // The admission span is the trace root: it marks where the
        // request entered and hands its identity to whichever worker
        // picks the request up. It closes here (admission is a point
        // event); the worker spans parent under it by context.
        obs::Span admit("serve.admit", obs::NewTrace());
        item.trace = admit.Context();
      }
#endif
      queue_.push_back(std::move(item));
    }
    admitted_.fetch_add(enqueued, std::memory_order_relaxed);
    AUTODC_OBS_COUNT("serve.admit", enqueued);
    AUTODC_OBS_GAUGE_SET("serve.queue.depth",
                         static_cast<double>(queue_.size()));
  }
  if (enqueued > 0) {
    // A window bigger than one batch is work for several workers.
    if (config_.threads > 1 && enqueued > config_.batch_max) {
      cv_.notify_all();
    } else {
      cv_.notify_one();
    }
  }
  return group;
}

ServeResponse CurationServer::ExecuteSequential(const ServeRequest& request) {
  std::shared_ptr<Session> session = sessions_.Get(request.session);
  if (session == nullptr) {
    return StatusResponse(ServeStatus::kError,
                          "unknown session " + std::to_string(request.session));
  }
  return session->Execute(request);
}

bool CurationServer::SampleTrace() {
#ifndef AUTODC_DISABLE_OBS
  double rate = config_.trace_sample;
  if (rate <= 0.0) return false;
  if (rate >= 1.0) return true;
  // Stride sampling: request n is traced when the accumulated quota
  // floor((n+1)*rate) crosses an integer. Deterministic — no RNG on
  // the admission path — and exact over any window: k of every
  // ceil(1/rate)-ish requests.
  uint64_t n = trace_seq_.fetch_add(1, std::memory_order_relaxed);
  double a = static_cast<double>(n) * rate;
  return std::floor(a + rate) > std::floor(a);
#else
  return false;
#endif
}

void CurationServer::WorkerLoop() {
  // Workers are long-lived and span-heavy under sampling; a bigger
  // completed-span buffer means a full bench run drops zero spans.
  obs::SetThreadSpanBufferCap(config_.worker_span_buffer);
  std::vector<Item> batch;
  for (;;) {
    batch.clear();
    if (!NextBatch(&batch)) return;
    ExecuteAndComplete(&batch);
  }
}

bool CurationServer::NextBatch(std::vector<Item>* batch) {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
    if (stopping_) return false;
    if (config_.batch_wait_us > 0 && queue_.size() < config_.batch_max) {
      // Deadline coalescing: hold the oldest request briefly so
      // concurrent submitters can fill the batch.
      auto deadline = queue_.front().enqueued +
                      std::chrono::microseconds(config_.batch_wait_us);
      cv_.wait_until(lock, deadline, [&] {
        return stopping_ || queue_.size() >= config_.batch_max;
      });
      if (stopping_) return false;
      if (queue_.empty()) continue;  // a sibling worker drained it
    }
    break;
  }
  // Coalesce from the front: everything bound for the same (session,
  // kind) joins this batch, other requests keep their queue position.
  uint64_t session = queue_.front().request.session;
  RequestKind kind = queue_.front().request.kind;
  batch->push_back(std::move(queue_.front()));
  queue_.pop_front();
  for (auto it = queue_.begin();
       it != queue_.end() && batch->size() < config_.batch_max;) {
    if (it->request.session == session && it->request.kind == kind) {
      batch->push_back(std::move(*it));
      it = queue_.erase(it);
    } else {
      ++it;
    }
  }
  AUTODC_OBS_GAUGE_SET("serve.queue.depth", static_cast<double>(queue_.size()));
  if (!queue_.empty()) cv_.notify_one();
  return true;
}

void CurationServer::ExecuteAndComplete(std::vector<Item>* batch) {
  size_t n = batch->size();
  auto start = std::chrono::steady_clock::now();
  batches_.fetch_add(1, std::memory_order_relaxed);
  AUTODC_OBS_INC("serve.batches");
  AUTODC_OBS_HIST("serve.batch.size", static_cast<double>(n));
#ifndef AUTODC_DISABLE_OBS
  const ServeMetrics& sm = ServeMetrics::Get();
  for (const Item& item : *batch) {
    sm.queue_wait_us->Record(MicrosSince(item.enqueued, start));
  }
  // Worker-side spans for sampled requests: "serve.batch" covers the
  // request's whole residency in this batch, "serve.execute" the model
  // forward inside it. Both adopt the admission span's context, so the
  // request is one connected tree across the submitter thread and this
  // worker. Untraced batches never touch the vectors.
  std::vector<std::unique_ptr<obs::Span>> batch_spans;
  bool any_traced = false;
  for (const Item& item : *batch) {
    if (item.trace.trace_id != 0) {
      any_traced = true;
      break;
    }
  }
  if (any_traced) {
    batch_spans.resize(n);
    for (size_t i = 0; i < n; ++i) {
      if ((*batch)[i].trace.trace_id != 0) {
        batch_spans[i] =
            std::make_unique<obs::Span>("serve.batch", (*batch)[i].trace);
      }
    }
  }
#endif

  std::shared_ptr<Session> session = sessions_.Get((*batch)[0].request.session);
  std::vector<ServeResponse> responses;
  if (session == nullptr) {
    responses.reserve(n);
    for (const Item& item : *batch) {
      responses.push_back(
          StatusResponse(ServeStatus::kError,
                         "unknown session " +
                             std::to_string(item.request.session)));
    }
  } else {
    std::vector<const ServeRequest*> requests;
    requests.reserve(n);
    for (const Item& item : *batch) requests.push_back(&item.request);
#ifndef AUTODC_DISABLE_OBS
    {
      std::vector<std::unique_ptr<obs::Span>> exec_spans;
      if (any_traced) {
        exec_spans.resize(n);
        for (size_t i = 0; i < n; ++i) {
          if (batch_spans[i] != nullptr) {
            exec_spans[i] = std::make_unique<obs::Span>(
                "serve.execute", batch_spans[i]->Context());
          }
        }
      }
      responses = session->ExecuteBatch(requests);
    }
#else
    responses = session->ExecuteBatch(requests);
#endif
  }

  // Account BEFORE waking clients: a caller returning from Wait() must
  // see its requests in stats().completed and its tenant's in-flight
  // budget already released (otherwise an immediate pipelined resubmit
  // can bounce off its own not-yet-decremented window).
  auto end = std::chrono::steady_clock::now();
#ifndef AUTODC_DISABLE_OBS
  // Per-tenant rollups by coalesced run: batches come off the queue in
  // contiguous same-tenant stretches, so label resolution happens once
  // per run, not once per request.
  sm.completed_kind->WithLabel(RequestKindName((*batch)[0].request.kind))
      ->Add(n);
  for (size_t i = 0; i < n;) {
    const std::string& tenant = (*batch)[i].request.tenant;
    size_t j = i;
    obs::Histogram* tenant_lat = sm.latency_tenant->WithLabel(tenant);
    while (j < n && (*batch)[j].request.tenant == tenant) {
      double lat = MicrosSince((*batch)[j].enqueued, end);
      sm.latency_us->Record(lat);
      tenant_lat->Record(lat);
      ++j;
    }
    sm.completed_tenant->WithLabel(tenant)->Add(j - i);
    i = j;
  }
#endif
  completed_.fetch_add(n, std::memory_order_relaxed);
  AUTODC_OBS_COUNT("serve.completed", n);
  DecrementInflight(*batch);

  // A batch is usually one client window (or a few runs of them):
  // complete each same-group run under a single group lock.
  std::vector<size_t> slots;
  slots.reserve(n);
  for (size_t i = 0; i < n;) {
    PendingBatch* group = (*batch)[i].group.get();
    size_t j = i;
    slots.clear();
    while (j < n && (*batch)[j].group.get() == group) {
      slots.push_back((*batch)[j].slot);
      ++j;
    }
    group->CompleteSlots(slots.data(), responses.data() + i, slots.size());
    i = j;
  }
}

void CurationServer::DecrementInflight(const std::vector<Item>& batch) {
  std::lock_guard<std::mutex> lock(mu_);
  // Coalesced batches come from contiguous queue runs, so same-tenant
  // items are adjacent: one map lookup per run, not per request.
  for (size_t i = 0; i < batch.size();) {
    const std::string& tenant = batch[i].request.tenant;
    size_t j = i + 1;
    while (j < batch.size() && batch[j].request.tenant == tenant) ++j;
    auto it = tenant_inflight_.find(tenant);
    if (it != tenant_inflight_.end()) {
      it->second -= std::min(it->second, j - i);
      if (it->second == 0) tenant_inflight_.erase(it);
    }
    i = j;
  }
}

void CurationServer::Stop() {
  std::call_once(stop_once_, [this] {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stopping_ = true;
    }
    cv_.notify_all();
    // Workers finish the batch they already extracted (in-flight work
    // drains), then exit without taking more.
    for (std::thread& t : workers_) {
      if (t.joinable()) t.join();
    }
    // Everything still queued gets the typed shutdown status.
    std::deque<Item> leftover;
    {
      std::lock_guard<std::mutex> lock(mu_);
      leftover.swap(queue_);
      tenant_inflight_.clear();
      AUTODC_OBS_GAUGE_SET("serve.queue.depth", 0.0);
    }
    for (Item& item : leftover) {
      shutdown_flushed_.fetch_add(1, std::memory_order_relaxed);
      AUTODC_OBS_INC("serve.shutdown.flushed");
      item.group->CompleteSlot(
          item.slot, StatusResponse(ServeStatus::kShutdown,
                                    "server stopped before execution"));
    }
    stopped_.store(true, std::memory_order_release);
  });
}

CurationServer::DebugSnapshot CurationServer::GetDebugSnapshot() {
  DebugSnapshot d;
  {
    std::lock_guard<std::mutex> lock(mu_);
    d.queue_depth = queue_.size();
    d.inflight_tenants = tenant_inflight_.size();
    for (const auto& [tenant, count] : tenant_inflight_) {
      d.inflight_requests += count;
    }
    d.stopping = stopping_;
  }
  d.stats = stats();
  d.sessions = sessions_.size();
  d.session_capacity = sessions_.capacity();
  SessionCache::Stats cs = sessions_.stats();
  d.session_hits = cs.hits;
  d.session_misses = cs.misses;
  d.session_evictions = cs.evictions;
  d.threads = config_.threads;
  d.queue_cap = config_.queue_cap;
  d.batch_max = config_.batch_max;
  return d;
}

std::string CurationServer::DebugSnapshotJson() {
  DebugSnapshot d = GetDebugSnapshot();
  JsonObject queue;
  queue.Set("depth", static_cast<size_t>(d.queue_depth))
      .Set("cap", d.queue_cap)
      .Set("inflight_tenants", d.inflight_tenants)
      .Set("inflight_requests", static_cast<size_t>(d.inflight_requests));
  JsonObject stats;
  stats.Set("admitted", static_cast<size_t>(d.stats.admitted))
      .Set("rejected_queue_full",
           static_cast<size_t>(d.stats.rejected_queue_full))
      .Set("rejected_tenant_cap",
           static_cast<size_t>(d.stats.rejected_tenant_cap))
      .Set("shutdown_flushed", static_cast<size_t>(d.stats.shutdown_flushed))
      .Set("completed", static_cast<size_t>(d.stats.completed))
      .Set("batches", static_cast<size_t>(d.stats.batches))
      .Set("mean_batch", d.stats.MeanBatch());
  JsonObject sessions;
  sessions.Set("resident", d.sessions)
      .Set("capacity", d.session_capacity)
      .Set("hits", static_cast<size_t>(d.session_hits))
      .Set("misses", static_cast<size_t>(d.session_misses))
      .Set("evictions", static_cast<size_t>(d.session_evictions));
  JsonObject out;
  out.SetRaw("stopping", d.stopping ? "true" : "false");
  out.Set("threads", d.threads)
      .Set("batch_max", d.batch_max)
      .SetRaw("queue", queue.str())
      .SetRaw("stats", stats.str())
      .SetRaw("sessions", sessions.str());
  return out.str();
}

CurationServer::Stats CurationServer::stats() const {
  Stats s;
  s.admitted = admitted_.load(std::memory_order_relaxed);
  s.rejected_queue_full = rejected_queue_full_.load(std::memory_order_relaxed);
  s.rejected_tenant_cap = rejected_tenant_cap_.load(std::memory_order_relaxed);
  s.shutdown_flushed = shutdown_flushed_.load(std::memory_order_relaxed);
  s.completed = completed_.load(std::memory_order_relaxed);
  s.batches = batches_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace autodc::serve
