#include "src/serve/server.h"

#include <algorithm>
#include <utility>

#include "src/common/env.h"
#include "src/data/table_file.h"
#include "src/obs/metrics.h"
#include "src/serve/fingerprint.h"

namespace autodc::serve {

namespace {

ServeResponse StatusResponse(ServeStatus status, std::string message) {
  ServeResponse resp;
  resp.status = status;
  resp.message = std::move(message);
  return resp;
}

double MicrosSince(std::chrono::steady_clock::time_point since,
                   std::chrono::steady_clock::time_point now) {
  return std::chrono::duration<double, std::micro>(now - since).count();
}

}  // namespace

ServeConfig ServeConfigFromEnv() {
  ServeConfig c;
  c.threads = EnvSizeT("AUTODC_SERVE_THREADS", c.threads, 1, 256);
  c.queue_cap =
      EnvSizeT("AUTODC_SERVE_QUEUE_CAP", c.queue_cap, 1, size_t{1} << 20);
  c.batch_max = EnvSizeT("AUTODC_SERVE_BATCH_MAX", c.batch_max, 1, 4096);
  c.batch_wait_us =
      EnvSizeT("AUTODC_SERVE_BATCH_WAIT_US", c.batch_wait_us, 0, 10000000);
  c.tenant_inflight_cap = EnvSizeT("AUTODC_SERVE_TENANT_CAP",
                                   c.tenant_inflight_cap, 1, size_t{1} << 20);
  c.session_capacity =
      EnvSizeT("AUTODC_SERVE_SESSIONS", c.session_capacity, 1, 4096);
  return c;
}

// ---- PendingBatch ------------------------------------------------------

const std::vector<ServeResponse>& PendingBatch::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return remaining_ == 0; });
  return responses_;
}

bool PendingBatch::Ready() const {
  std::lock_guard<std::mutex> lock(mu_);
  return remaining_ == 0;
}

void PendingBatch::CompleteSlot(size_t slot, ServeResponse&& resp) {
  bool done;
  {
    std::lock_guard<std::mutex> lock(mu_);
    responses_[slot] = std::move(resp);
    done = (--remaining_ == 0);
  }
  // One wakeup per window, not per request — the client sleeps through
  // every completion but the last.
  if (done) cv_.notify_all();
}

void PendingBatch::CompleteSlots(const size_t* slots, ServeResponse* resps,
                                 size_t count) {
  bool done;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t i = 0; i < count; ++i) {
      responses_[slots[i]] = std::move(resps[i]);
    }
    remaining_ -= count;
    done = (remaining_ == 0);
  }
  if (done) cv_.notify_all();
}

// ---- CurationServer ----------------------------------------------------

CurationServer::CurationServer(const ServeConfig& config)
    : config_(config), sessions_(std::max<size_t>(1, config.session_capacity)) {
  if (config_.threads == 0) config_.threads = 1;
  if (config_.batch_max == 0) config_.batch_max = 1;
  if (config_.queue_cap == 0) config_.queue_cap = 1;
  workers_.reserve(config_.threads);
  for (size_t i = 0; i < config_.threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

CurationServer::~CurationServer() { Stop(); }

Result<uint64_t> CurationServer::OpenSession(const std::string& adct_path) {
  auto fpr = FingerprintFile(adct_path);
  if (!fpr.ok()) return fpr.status();
  uint64_t fp = fpr.ValueOrDie();
  if (sessions_.Get(fp) != nullptr) return fp;  // byte-identical data: reuse
  auto table = data::OpenTableFile(adct_path);
  if (!table.ok()) return table.status();
  auto session =
      Session::Build(std::move(table).ValueOrDie(), fp, config_.session);
  if (!session.ok()) return session.status();
  sessions_.Put(fp, std::move(session).ValueOrDie());
  return fp;
}

Result<uint64_t> CurationServer::OpenSessionFromTable(
    const data::Table& table) {
  uint64_t fp = FingerprintTable(table);
  if (sessions_.Get(fp) != nullptr) return fp;
  auto session = Session::Build(table, fp, config_.session);
  if (!session.ok()) return session.status();
  sessions_.Put(fp, std::move(session).ValueOrDie());
  return fp;
}

std::shared_ptr<Session> CurationServer::FindSession(uint64_t fingerprint) {
  return sessions_.Get(fingerprint);
}

Status CurationServer::RefreshSession(uint64_t fingerprint) {
  std::shared_ptr<Session> session = sessions_.Get(fingerprint);
  if (session == nullptr) {
    return Status::NotFound("no session for fingerprint " +
                            std::to_string(fingerprint));
  }
  return session->Refresh();
}

std::shared_ptr<PendingBatch> CurationServer::Submit(
    const ServeRequest& request) {
  return SubmitMany({request});
}

std::shared_ptr<PendingBatch> CurationServer::SubmitMany(
    const std::vector<ServeRequest>& requests) {
  auto group =
      std::shared_ptr<PendingBatch>(new PendingBatch(requests.size()));
  size_t enqueued = 0;
  auto now = std::chrono::steady_clock::now();
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Windows are usually single-tenant; unordered_map references are
    // stable, so one lookup serves the whole run.
    size_t* inflight_slot = nullptr;
    const std::string* inflight_tenant = nullptr;
    for (size_t i = 0; i < requests.size(); ++i) {
      const ServeRequest& r = requests[i];
      if (stopping_) {
        shutdown_flushed_.fetch_add(1, std::memory_order_relaxed);
        AUTODC_OBS_INC("serve.reject.shutdown");
        group->CompleteSlot(
            i, StatusResponse(ServeStatus::kShutdown, "server stopping"));
        continue;
      }
      if (queue_.size() >= config_.queue_cap) {
        rejected_queue_full_.fetch_add(1, std::memory_order_relaxed);
        AUTODC_OBS_INC("serve.reject.queue_full");
        group->CompleteSlot(
            i, StatusResponse(ServeStatus::kRejectedQueueFull,
                              "request queue at capacity"));
        continue;
      }
      if (inflight_slot == nullptr || *inflight_tenant != r.tenant) {
        inflight_slot = &tenant_inflight_[r.tenant];
        inflight_tenant = &r.tenant;
      }
      size_t& inflight = *inflight_slot;
      if (inflight >= config_.tenant_inflight_cap) {
        rejected_tenant_cap_.fetch_add(1, std::memory_order_relaxed);
        AUTODC_OBS_INC("serve.reject.tenant_cap");
        group->CompleteSlot(
            i, StatusResponse(ServeStatus::kRejectedTenantCap,
                              "tenant in-flight cap reached"));
        continue;
      }
      ++inflight;
      ++enqueued;
      queue_.push_back(Item{r, group, i, now});
    }
    admitted_.fetch_add(enqueued, std::memory_order_relaxed);
    AUTODC_OBS_COUNT("serve.admit", enqueued);
    AUTODC_OBS_GAUGE_SET("serve.queue.depth",
                         static_cast<double>(queue_.size()));
  }
  if (enqueued > 0) {
    // A window bigger than one batch is work for several workers.
    if (config_.threads > 1 && enqueued > config_.batch_max) {
      cv_.notify_all();
    } else {
      cv_.notify_one();
    }
  }
  return group;
}

ServeResponse CurationServer::ExecuteSequential(const ServeRequest& request) {
  std::shared_ptr<Session> session = sessions_.Get(request.session);
  if (session == nullptr) {
    return StatusResponse(ServeStatus::kError,
                          "unknown session " + std::to_string(request.session));
  }
  return session->Execute(request);
}

void CurationServer::WorkerLoop() {
  std::vector<Item> batch;
  for (;;) {
    batch.clear();
    if (!NextBatch(&batch)) return;
    ExecuteAndComplete(&batch);
  }
}

bool CurationServer::NextBatch(std::vector<Item>* batch) {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
    if (stopping_) return false;
    if (config_.batch_wait_us > 0 && queue_.size() < config_.batch_max) {
      // Deadline coalescing: hold the oldest request briefly so
      // concurrent submitters can fill the batch.
      auto deadline = queue_.front().enqueued +
                      std::chrono::microseconds(config_.batch_wait_us);
      cv_.wait_until(lock, deadline, [&] {
        return stopping_ || queue_.size() >= config_.batch_max;
      });
      if (stopping_) return false;
      if (queue_.empty()) continue;  // a sibling worker drained it
    }
    break;
  }
  // Coalesce from the front: everything bound for the same (session,
  // kind) joins this batch, other requests keep their queue position.
  uint64_t session = queue_.front().request.session;
  RequestKind kind = queue_.front().request.kind;
  batch->push_back(std::move(queue_.front()));
  queue_.pop_front();
  for (auto it = queue_.begin();
       it != queue_.end() && batch->size() < config_.batch_max;) {
    if (it->request.session == session && it->request.kind == kind) {
      batch->push_back(std::move(*it));
      it = queue_.erase(it);
    } else {
      ++it;
    }
  }
  AUTODC_OBS_GAUGE_SET("serve.queue.depth", static_cast<double>(queue_.size()));
  if (!queue_.empty()) cv_.notify_one();
  return true;
}

void CurationServer::ExecuteAndComplete(std::vector<Item>* batch) {
  size_t n = batch->size();
  auto start = std::chrono::steady_clock::now();
  batches_.fetch_add(1, std::memory_order_relaxed);
  AUTODC_OBS_INC("serve.batches");
  AUTODC_OBS_HIST("serve.batch.size", static_cast<double>(n));
  for (const Item& item : *batch) {
    AUTODC_OBS_HIST("serve.queue.wait_us", MicrosSince(item.enqueued, start));
  }

  std::shared_ptr<Session> session = sessions_.Get((*batch)[0].request.session);
  std::vector<ServeResponse> responses;
  if (session == nullptr) {
    responses.reserve(n);
    for (const Item& item : *batch) {
      responses.push_back(
          StatusResponse(ServeStatus::kError,
                         "unknown session " +
                             std::to_string(item.request.session)));
    }
  } else {
    std::vector<const ServeRequest*> requests;
    requests.reserve(n);
    for (const Item& item : *batch) requests.push_back(&item.request);
    responses = session->ExecuteBatch(requests);
  }

  // Account BEFORE waking clients: a caller returning from Wait() must
  // see its requests in stats().completed and its tenant's in-flight
  // budget already released (otherwise an immediate pipelined resubmit
  // can bounce off its own not-yet-decremented window).
  auto end = std::chrono::steady_clock::now();
  for (const Item& item : *batch) {
    AUTODC_OBS_HIST("serve.latency_us", MicrosSince(item.enqueued, end));
  }
  completed_.fetch_add(n, std::memory_order_relaxed);
  AUTODC_OBS_COUNT("serve.completed", n);
  DecrementInflight(*batch);

  // A batch is usually one client window (or a few runs of them):
  // complete each same-group run under a single group lock.
  std::vector<size_t> slots;
  slots.reserve(n);
  for (size_t i = 0; i < n;) {
    PendingBatch* group = (*batch)[i].group.get();
    size_t j = i;
    slots.clear();
    while (j < n && (*batch)[j].group.get() == group) {
      slots.push_back((*batch)[j].slot);
      ++j;
    }
    group->CompleteSlots(slots.data(), responses.data() + i, slots.size());
    i = j;
  }
}

void CurationServer::DecrementInflight(const std::vector<Item>& batch) {
  std::lock_guard<std::mutex> lock(mu_);
  // Coalesced batches come from contiguous queue runs, so same-tenant
  // items are adjacent: one map lookup per run, not per request.
  for (size_t i = 0; i < batch.size();) {
    const std::string& tenant = batch[i].request.tenant;
    size_t j = i + 1;
    while (j < batch.size() && batch[j].request.tenant == tenant) ++j;
    auto it = tenant_inflight_.find(tenant);
    if (it != tenant_inflight_.end()) {
      it->second -= std::min(it->second, j - i);
      if (it->second == 0) tenant_inflight_.erase(it);
    }
    i = j;
  }
}

void CurationServer::Stop() {
  std::call_once(stop_once_, [this] {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stopping_ = true;
    }
    cv_.notify_all();
    // Workers finish the batch they already extracted (in-flight work
    // drains), then exit without taking more.
    for (std::thread& t : workers_) {
      if (t.joinable()) t.join();
    }
    // Everything still queued gets the typed shutdown status.
    std::deque<Item> leftover;
    {
      std::lock_guard<std::mutex> lock(mu_);
      leftover.swap(queue_);
      tenant_inflight_.clear();
      AUTODC_OBS_GAUGE_SET("serve.queue.depth", 0.0);
    }
    for (Item& item : leftover) {
      shutdown_flushed_.fetch_add(1, std::memory_order_relaxed);
      AUTODC_OBS_INC("serve.shutdown.flushed");
      item.group->CompleteSlot(
          item.slot, StatusResponse(ServeStatus::kShutdown,
                                    "server stopped before execution"));
    }
    stopped_.store(true, std::memory_order_release);
  });
}

CurationServer::Stats CurationServer::stats() const {
  Stats s;
  s.admitted = admitted_.load(std::memory_order_relaxed);
  s.rejected_queue_full = rejected_queue_full_.load(std::memory_order_relaxed);
  s.rejected_tenant_cap = rejected_tenant_cap_.load(std::memory_order_relaxed);
  s.shutdown_flushed = shutdown_flushed_.load(std::memory_order_relaxed);
  s.completed = completed_.load(std::memory_order_relaxed);
  s.batches = batches_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace autodc::serve
