#include "src/serve/session_cache.h"

#include <utility>

#include "src/obs/metrics.h"

namespace autodc::serve {

std::shared_ptr<Session> SessionCache::Get(uint64_t fingerprint) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(fingerprint);
  if (it == entries_.end()) {
    ++stats_.misses;
    AUTODC_OBS_INC("serve.session.miss");
    return nullptr;
  }
  ++stats_.hits;
  AUTODC_OBS_INC("serve.session.hit");
  lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
  return it->second.session;
}

void SessionCache::Put(uint64_t fingerprint, std::shared_ptr<Session> session) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(fingerprint);
  if (it != entries_.end()) {
    it->second.session = std::move(session);
    lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
    return;
  }
  lru_.push_front(fingerprint);
  entries_[fingerprint] = Entry{std::move(session), lru_.begin()};
  while (capacity_ > 0 && entries_.size() > capacity_) {
    uint64_t victim = lru_.back();
    lru_.pop_back();
    entries_.erase(victim);  // holders of the shared_ptr keep it alive
    ++stats_.evictions;
    AUTODC_OBS_INC("serve.session.evict");
  }
  AUTODC_OBS_GAUGE_SET("serve.session.resident",
                       static_cast<double>(entries_.size()));
}

bool SessionCache::Contains(uint64_t fingerprint) const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.count(fingerprint) > 0;
}

size_t SessionCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

SessionCache::Stats SessionCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace autodc::serve
