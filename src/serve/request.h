#ifndef AUTODC_SERVE_REQUEST_H_
#define AUTODC_SERVE_REQUEST_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

// Wire-level types of the curation server (DESIGN.md §13): what a
// tenant asks of a session and what comes back. Kept free of model
// headers so request producers (load generators, future RPC shims)
// compile against this file alone.
namespace autodc::serve {

/// What the request asks the session's model zoo to do.
enum class RequestKind : uint8_t {
  /// DeepER-style match probability for the row pair (row_a, row_b).
  kScorePair = 0,
  /// Predicted value for cell (row_a, col) as if it were missing
  /// (KNN imputer).
  kImpute,
  /// Z-score outlier check of numeric cell (row_a, col).
  kOutlierCheck,
  /// k most similar rows to row_a (embedding store, ANN when active).
  kNearestRows,
};

/// Typed disposition of a request — the admission-control and lifecycle
/// vocabulary. Everything except kOk and kError is decided without
/// touching a model.
enum class ServeStatus : uint8_t {
  kOk = 0,
  /// Bounded queue at capacity; retry with backoff.
  kRejectedQueueFull,
  /// The tenant already has its in-flight cap worth of admitted work.
  kRejectedTenantCap,
  /// Server stopping: the request was queued but never executed.
  kShutdown,
  /// Executed but failed (unknown session, bad row/col, ...); see
  /// message.
  kError,
};

const char* RequestKindName(RequestKind kind);
const char* ServeStatusName(ServeStatus status);

struct ServeRequest {
  RequestKind kind = RequestKind::kScorePair;
  /// Session handle from CurationServer::OpenSession (the dataset
  /// fingerprint).
  uint64_t session = 0;
  /// Admission-control key; empty is a valid (shared) tenant.
  std::string tenant;
  size_t row_a = 0;
  size_t row_b = 0;
  size_t col = 0;
  size_t k = 1;
};

/// One neighbour from a kNearestRows request.
struct RowNeighbor {
  size_t row = 0;
  double similarity = 0.0;
  bool operator==(const RowNeighbor& o) const {
    return row == o.row && similarity == o.similarity;
  }
};

struct ServeResponse {
  ServeStatus status = ServeStatus::kOk;
  std::string message;
  /// kScorePair: match probability; kOutlierCheck: |z| score.
  double score = 0.0;
  /// kOutlierCheck: whether the cell breached the threshold.
  bool flagged = false;
  /// kImpute: predicted cell text.
  std::string value;
  /// kNearestRows.
  std::vector<RowNeighbor> neighbors;

  /// Exact equality, scores compared bit-for-bit — the byte-identity
  /// oracle the batched path is held to against sequential execution.
  bool operator==(const ServeResponse& o) const {
    return status == o.status && message == o.message && score == o.score &&
           flagged == o.flagged && value == o.value && neighbors == o.neighbors;
  }
};

inline const char* RequestKindName(RequestKind kind) {
  switch (kind) {
    case RequestKind::kScorePair: return "score_pair";
    case RequestKind::kImpute: return "impute";
    case RequestKind::kOutlierCheck: return "outlier_check";
    case RequestKind::kNearestRows: return "nearest_rows";
  }
  return "unknown";
}

inline const char* ServeStatusName(ServeStatus status) {
  switch (status) {
    case ServeStatus::kOk: return "ok";
    case ServeStatus::kRejectedQueueFull: return "rejected_queue_full";
    case ServeStatus::kRejectedTenantCap: return "rejected_tenant_cap";
    case ServeStatus::kShutdown: return "shutdown";
    case ServeStatus::kError: return "error";
  }
  return "unknown";
}

}  // namespace autodc::serve

#endif  // AUTODC_SERVE_REQUEST_H_
