#ifndef AUTODC_SERVE_SESSION_CACHE_H_
#define AUTODC_SERVE_SESSION_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "src/serve/session.h"

namespace autodc::serve {

/// LRU cache of built sessions keyed on dataset fingerprint. Capacity
/// bounds the number of resident model zoos; eviction drops the cache's
/// shared_ptr only — an in-flight batch holding the session keeps it
/// alive until the batch completes (no use-after-free by construction).
class SessionCache {
 public:
  explicit SessionCache(size_t capacity) : capacity_(capacity) {}

  /// The session for `fingerprint` (refreshing its recency), or null.
  std::shared_ptr<Session> Get(uint64_t fingerprint);

  /// Inserts (or replaces) a session, evicting the least recently used
  /// entry when over capacity.
  void Put(uint64_t fingerprint, std::shared_ptr<Session> session);

  bool Contains(uint64_t fingerprint) const;
  size_t size() const;
  size_t capacity() const { return capacity_; }

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
  };
  Stats stats() const;

 private:
  struct Entry {
    std::shared_ptr<Session> session;
    std::list<uint64_t>::iterator lru_pos;
  };

  mutable std::mutex mu_;
  size_t capacity_;
  std::list<uint64_t> lru_;  ///< front = most recently used
  std::unordered_map<uint64_t, Entry> entries_;
  Stats stats_;
};

}  // namespace autodc::serve

#endif  // AUTODC_SERVE_SESSION_CACHE_H_
