# Empty compiler generated dependencies file for autodc.
# This may be replaced when dependencies are built.
