
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cleaning/encoding.cc" "src/CMakeFiles/autodc.dir/cleaning/encoding.cc.o" "gcc" "src/CMakeFiles/autodc.dir/cleaning/encoding.cc.o.d"
  "/root/repo/src/cleaning/imputation.cc" "src/CMakeFiles/autodc.dir/cleaning/imputation.cc.o" "gcc" "src/CMakeFiles/autodc.dir/cleaning/imputation.cc.o.d"
  "/root/repo/src/cleaning/outliers.cc" "src/CMakeFiles/autodc.dir/cleaning/outliers.cc.o" "gcc" "src/CMakeFiles/autodc.dir/cleaning/outliers.cc.o.d"
  "/root/repo/src/cleaning/repair.cc" "src/CMakeFiles/autodc.dir/cleaning/repair.cc.o" "gcc" "src/CMakeFiles/autodc.dir/cleaning/repair.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/autodc.dir/common/status.cc.o" "gcc" "src/CMakeFiles/autodc.dir/common/status.cc.o.d"
  "/root/repo/src/common/string_util.cc" "src/CMakeFiles/autodc.dir/common/string_util.cc.o" "gcc" "src/CMakeFiles/autodc.dir/common/string_util.cc.o.d"
  "/root/repo/src/core/autocurator.cc" "src/CMakeFiles/autodc.dir/core/autocurator.cc.o" "gcc" "src/CMakeFiles/autodc.dir/core/autocurator.cc.o.d"
  "/root/repo/src/core/pipeline.cc" "src/CMakeFiles/autodc.dir/core/pipeline.cc.o" "gcc" "src/CMakeFiles/autodc.dir/core/pipeline.cc.o.d"
  "/root/repo/src/data/csv.cc" "src/CMakeFiles/autodc.dir/data/csv.cc.o" "gcc" "src/CMakeFiles/autodc.dir/data/csv.cc.o.d"
  "/root/repo/src/data/dependencies.cc" "src/CMakeFiles/autodc.dir/data/dependencies.cc.o" "gcc" "src/CMakeFiles/autodc.dir/data/dependencies.cc.o.d"
  "/root/repo/src/data/schema.cc" "src/CMakeFiles/autodc.dir/data/schema.cc.o" "gcc" "src/CMakeFiles/autodc.dir/data/schema.cc.o.d"
  "/root/repo/src/data/table.cc" "src/CMakeFiles/autodc.dir/data/table.cc.o" "gcc" "src/CMakeFiles/autodc.dir/data/table.cc.o.d"
  "/root/repo/src/data/table_graph.cc" "src/CMakeFiles/autodc.dir/data/table_graph.cc.o" "gcc" "src/CMakeFiles/autodc.dir/data/table_graph.cc.o.d"
  "/root/repo/src/data/value.cc" "src/CMakeFiles/autodc.dir/data/value.cc.o" "gcc" "src/CMakeFiles/autodc.dir/data/value.cc.o.d"
  "/root/repo/src/datagen/corpus.cc" "src/CMakeFiles/autodc.dir/datagen/corpus.cc.o" "gcc" "src/CMakeFiles/autodc.dir/datagen/corpus.cc.o.d"
  "/root/repo/src/datagen/enterprise.cc" "src/CMakeFiles/autodc.dir/datagen/enterprise.cc.o" "gcc" "src/CMakeFiles/autodc.dir/datagen/enterprise.cc.o.d"
  "/root/repo/src/datagen/er_benchmark.cc" "src/CMakeFiles/autodc.dir/datagen/er_benchmark.cc.o" "gcc" "src/CMakeFiles/autodc.dir/datagen/er_benchmark.cc.o.d"
  "/root/repo/src/datagen/error_injector.cc" "src/CMakeFiles/autodc.dir/datagen/error_injector.cc.o" "gcc" "src/CMakeFiles/autodc.dir/datagen/error_injector.cc.o.d"
  "/root/repo/src/datagen/perturb.cc" "src/CMakeFiles/autodc.dir/datagen/perturb.cc.o" "gcc" "src/CMakeFiles/autodc.dir/datagen/perturb.cc.o.d"
  "/root/repo/src/discovery/ekg.cc" "src/CMakeFiles/autodc.dir/discovery/ekg.cc.o" "gcc" "src/CMakeFiles/autodc.dir/discovery/ekg.cc.o.d"
  "/root/repo/src/discovery/schema_mapping.cc" "src/CMakeFiles/autodc.dir/discovery/schema_mapping.cc.o" "gcc" "src/CMakeFiles/autodc.dir/discovery/schema_mapping.cc.o.d"
  "/root/repo/src/discovery/search.cc" "src/CMakeFiles/autodc.dir/discovery/search.cc.o" "gcc" "src/CMakeFiles/autodc.dir/discovery/search.cc.o.d"
  "/root/repo/src/discovery/semantic_matcher.cc" "src/CMakeFiles/autodc.dir/discovery/semantic_matcher.cc.o" "gcc" "src/CMakeFiles/autodc.dir/discovery/semantic_matcher.cc.o.d"
  "/root/repo/src/embedding/composition.cc" "src/CMakeFiles/autodc.dir/embedding/composition.cc.o" "gcc" "src/CMakeFiles/autodc.dir/embedding/composition.cc.o.d"
  "/root/repo/src/embedding/embedding_store.cc" "src/CMakeFiles/autodc.dir/embedding/embedding_store.cc.o" "gcc" "src/CMakeFiles/autodc.dir/embedding/embedding_store.cc.o.d"
  "/root/repo/src/embedding/graph_embedding.cc" "src/CMakeFiles/autodc.dir/embedding/graph_embedding.cc.o" "gcc" "src/CMakeFiles/autodc.dir/embedding/graph_embedding.cc.o.d"
  "/root/repo/src/embedding/sgns.cc" "src/CMakeFiles/autodc.dir/embedding/sgns.cc.o" "gcc" "src/CMakeFiles/autodc.dir/embedding/sgns.cc.o.d"
  "/root/repo/src/embedding/word2vec.cc" "src/CMakeFiles/autodc.dir/embedding/word2vec.cc.o" "gcc" "src/CMakeFiles/autodc.dir/embedding/word2vec.cc.o.d"
  "/root/repo/src/er/baselines.cc" "src/CMakeFiles/autodc.dir/er/baselines.cc.o" "gcc" "src/CMakeFiles/autodc.dir/er/baselines.cc.o.d"
  "/root/repo/src/er/blocking.cc" "src/CMakeFiles/autodc.dir/er/blocking.cc.o" "gcc" "src/CMakeFiles/autodc.dir/er/blocking.cc.o.d"
  "/root/repo/src/er/deeper.cc" "src/CMakeFiles/autodc.dir/er/deeper.cc.o" "gcc" "src/CMakeFiles/autodc.dir/er/deeper.cc.o.d"
  "/root/repo/src/er/evaluation.cc" "src/CMakeFiles/autodc.dir/er/evaluation.cc.o" "gcc" "src/CMakeFiles/autodc.dir/er/evaluation.cc.o.d"
  "/root/repo/src/er/features.cc" "src/CMakeFiles/autodc.dir/er/features.cc.o" "gcc" "src/CMakeFiles/autodc.dir/er/features.cc.o.d"
  "/root/repo/src/nn/autoencoder.cc" "src/CMakeFiles/autodc.dir/nn/autoencoder.cc.o" "gcc" "src/CMakeFiles/autodc.dir/nn/autoencoder.cc.o.d"
  "/root/repo/src/nn/autograd.cc" "src/CMakeFiles/autodc.dir/nn/autograd.cc.o" "gcc" "src/CMakeFiles/autodc.dir/nn/autograd.cc.o.d"
  "/root/repo/src/nn/classifier.cc" "src/CMakeFiles/autodc.dir/nn/classifier.cc.o" "gcc" "src/CMakeFiles/autodc.dir/nn/classifier.cc.o.d"
  "/root/repo/src/nn/gan.cc" "src/CMakeFiles/autodc.dir/nn/gan.cc.o" "gcc" "src/CMakeFiles/autodc.dir/nn/gan.cc.o.d"
  "/root/repo/src/nn/layers.cc" "src/CMakeFiles/autodc.dir/nn/layers.cc.o" "gcc" "src/CMakeFiles/autodc.dir/nn/layers.cc.o.d"
  "/root/repo/src/nn/optimizer.cc" "src/CMakeFiles/autodc.dir/nn/optimizer.cc.o" "gcc" "src/CMakeFiles/autodc.dir/nn/optimizer.cc.o.d"
  "/root/repo/src/nn/rnn.cc" "src/CMakeFiles/autodc.dir/nn/rnn.cc.o" "gcc" "src/CMakeFiles/autodc.dir/nn/rnn.cc.o.d"
  "/root/repo/src/nn/serialize.cc" "src/CMakeFiles/autodc.dir/nn/serialize.cc.o" "gcc" "src/CMakeFiles/autodc.dir/nn/serialize.cc.o.d"
  "/root/repo/src/nn/tensor.cc" "src/CMakeFiles/autodc.dir/nn/tensor.cc.o" "gcc" "src/CMakeFiles/autodc.dir/nn/tensor.cc.o.d"
  "/root/repo/src/synthesis/dsl.cc" "src/CMakeFiles/autodc.dir/synthesis/dsl.cc.o" "gcc" "src/CMakeFiles/autodc.dir/synthesis/dsl.cc.o.d"
  "/root/repo/src/synthesis/etl.cc" "src/CMakeFiles/autodc.dir/synthesis/etl.cc.o" "gcc" "src/CMakeFiles/autodc.dir/synthesis/etl.cc.o.d"
  "/root/repo/src/synthesis/semantic.cc" "src/CMakeFiles/autodc.dir/synthesis/semantic.cc.o" "gcc" "src/CMakeFiles/autodc.dir/synthesis/semantic.cc.o.d"
  "/root/repo/src/text/similarity.cc" "src/CMakeFiles/autodc.dir/text/similarity.cc.o" "gcc" "src/CMakeFiles/autodc.dir/text/similarity.cc.o.d"
  "/root/repo/src/text/tokenizer.cc" "src/CMakeFiles/autodc.dir/text/tokenizer.cc.o" "gcc" "src/CMakeFiles/autodc.dir/text/tokenizer.cc.o.d"
  "/root/repo/src/text/vocabulary.cc" "src/CMakeFiles/autodc.dir/text/vocabulary.cc.o" "gcc" "src/CMakeFiles/autodc.dir/text/vocabulary.cc.o.d"
  "/root/repo/src/weak/augment.cc" "src/CMakeFiles/autodc.dir/weak/augment.cc.o" "gcc" "src/CMakeFiles/autodc.dir/weak/augment.cc.o.d"
  "/root/repo/src/weak/labeling.cc" "src/CMakeFiles/autodc.dir/weak/labeling.cc.o" "gcc" "src/CMakeFiles/autodc.dir/weak/labeling.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
