file(REMOVE_RECURSE
  "libautodc.a"
)
