file(REMOVE_RECURSE
  "CMakeFiles/bench_architectures.dir/bench/bench_architectures.cc.o"
  "CMakeFiles/bench_architectures.dir/bench/bench_architectures.cc.o.d"
  "bench/bench_architectures"
  "bench/bench_architectures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_architectures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
