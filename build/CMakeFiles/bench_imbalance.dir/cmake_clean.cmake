file(REMOVE_RECURSE
  "CMakeFiles/bench_imbalance.dir/bench/bench_imbalance.cc.o"
  "CMakeFiles/bench_imbalance.dir/bench/bench_imbalance.cc.o.d"
  "bench/bench_imbalance"
  "bench/bench_imbalance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_imbalance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
