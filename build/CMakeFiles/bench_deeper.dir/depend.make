# Empty dependencies file for bench_deeper.
# This may be replaced when dependencies are built.
