file(REMOVE_RECURSE
  "CMakeFiles/bench_deeper.dir/bench/bench_deeper.cc.o"
  "CMakeFiles/bench_deeper.dir/bench/bench_deeper.cc.o.d"
  "bench/bench_deeper"
  "bench/bench_deeper.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_deeper.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
