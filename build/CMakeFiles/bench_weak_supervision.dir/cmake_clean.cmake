file(REMOVE_RECURSE
  "CMakeFiles/bench_weak_supervision.dir/bench/bench_weak_supervision.cc.o"
  "CMakeFiles/bench_weak_supervision.dir/bench/bench_weak_supervision.cc.o.d"
  "bench/bench_weak_supervision"
  "bench/bench_weak_supervision.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_weak_supervision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
