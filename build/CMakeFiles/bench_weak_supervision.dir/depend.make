# Empty dependencies file for bench_weak_supervision.
# This may be replaced when dependencies are built.
