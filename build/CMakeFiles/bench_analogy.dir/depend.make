# Empty dependencies file for bench_analogy.
# This may be replaced when dependencies are built.
