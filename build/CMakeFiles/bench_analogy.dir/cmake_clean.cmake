file(REMOVE_RECURSE
  "CMakeFiles/bench_analogy.dir/bench/bench_analogy.cc.o"
  "CMakeFiles/bench_analogy.dir/bench/bench_analogy.cc.o.d"
  "bench/bench_analogy"
  "bench/bench_analogy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_analogy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
