file(REMOVE_RECURSE
  "CMakeFiles/bench_window_size.dir/bench/bench_window_size.cc.o"
  "CMakeFiles/bench_window_size.dir/bench/bench_window_size.cc.o.d"
  "bench/bench_window_size"
  "bench/bench_window_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_window_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
