file(REMOVE_RECURSE
  "CMakeFiles/bench_imputation.dir/bench/bench_imputation.cc.o"
  "CMakeFiles/bench_imputation.dir/bench/bench_imputation.cc.o.d"
  "bench/bench_imputation"
  "bench/bench_imputation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_imputation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
