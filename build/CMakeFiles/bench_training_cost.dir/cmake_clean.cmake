file(REMOVE_RECURSE
  "CMakeFiles/bench_training_cost.dir/bench/bench_training_cost.cc.o"
  "CMakeFiles/bench_training_cost.dir/bench/bench_training_cost.cc.o.d"
  "bench/bench_training_cost"
  "bench/bench_training_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_training_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
