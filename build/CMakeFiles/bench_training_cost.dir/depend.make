# Empty dependencies file for bench_training_cost.
# This may be replaced when dependencies are built.
