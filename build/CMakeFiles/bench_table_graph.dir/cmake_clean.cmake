file(REMOVE_RECURSE
  "CMakeFiles/bench_table_graph.dir/bench/bench_table_graph.cc.o"
  "CMakeFiles/bench_table_graph.dir/bench/bench_table_graph.cc.o.d"
  "bench/bench_table_graph"
  "bench/bench_table_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
