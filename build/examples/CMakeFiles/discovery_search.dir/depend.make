# Empty dependencies file for discovery_search.
# This may be replaced when dependencies are built.
