file(REMOVE_RECURSE
  "CMakeFiles/discovery_search.dir/discovery_search.cpp.o"
  "CMakeFiles/discovery_search.dir/discovery_search.cpp.o.d"
  "discovery_search"
  "discovery_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/discovery_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
