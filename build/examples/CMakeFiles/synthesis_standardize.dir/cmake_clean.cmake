file(REMOVE_RECURSE
  "CMakeFiles/synthesis_standardize.dir/synthesis_standardize.cpp.o"
  "CMakeFiles/synthesis_standardize.dir/synthesis_standardize.cpp.o.d"
  "synthesis_standardize"
  "synthesis_standardize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/synthesis_standardize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
