# Empty compiler generated dependencies file for synthesis_standardize.
# This may be replaced when dependencies are built.
