file(REMOVE_RECURSE
  "CMakeFiles/er_product_matching.dir/er_product_matching.cpp.o"
  "CMakeFiles/er_product_matching.dir/er_product_matching.cpp.o.d"
  "er_product_matching"
  "er_product_matching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/er_product_matching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
