# Empty dependencies file for er_product_matching.
# This may be replaced when dependencies are built.
