file(REMOVE_RECURSE
  "CMakeFiles/cleaning_imputation.dir/cleaning_imputation.cpp.o"
  "CMakeFiles/cleaning_imputation.dir/cleaning_imputation.cpp.o.d"
  "cleaning_imputation"
  "cleaning_imputation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cleaning_imputation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
