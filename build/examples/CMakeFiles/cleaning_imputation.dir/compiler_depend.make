# Empty compiler generated dependencies file for cleaning_imputation.
# This may be replaced when dependencies are built.
