// Tests for program synthesis: the string DSL semantics, the enumerative
// synthesizer on classic FlashFill tasks, semantic transformations via
// embedding offsets, and ETL pipeline synthesis.
#include <gtest/gtest.h>

#include "src/datagen/corpus.h"
#include "src/embedding/word2vec.h"
#include "src/synthesis/dsl.h"
#include "src/synthesis/etl.h"
#include "src/synthesis/semantic.h"

namespace autodc::synthesis {
namespace {

TEST(DslTest, AtomSemantics) {
  Program p;
  p.atoms = {Atom{Atom::Kind::kInitial, "", 0, CaseKind::kIdentity},
             Atom{Atom::Kind::kConst, ". ", 0, CaseKind::kIdentity},
             Atom{Atom::Kind::kToken, "", 1, CaseKind::kTitle}};
  EXPECT_EQ(p.Apply("john smith"), "J. Smith");
  EXPECT_EQ(p.Apply("jane doe"), "J. Doe");
  // Missing tokens emit nothing.
  EXPECT_EQ(p.Apply("solo"), "S. ");
}

TEST(DslTest, NegativeTokenIndex) {
  Program p;
  p.atoms = {Atom{Atom::Kind::kToken, "", -1, CaseKind::kUpper}};
  EXPECT_EQ(p.Apply("a b c"), "C");
  EXPECT_EQ(p.Apply("single"), "SINGLE");
  EXPECT_EQ(p.Apply(""), "");
}

TEST(DslTest, CaseTransforms) {
  Program lower{{Atom{Atom::Kind::kToken, "", 0, CaseKind::kLower}}};
  Program upper{{Atom{Atom::Kind::kToken, "", 0, CaseKind::kUpper}}};
  Program title{{Atom{Atom::Kind::kToken, "", 0, CaseKind::kTitle}}};
  EXPECT_EQ(lower.Apply("HeLLo"), "hello");
  EXPECT_EQ(upper.Apply("HeLLo"), "HELLO");
  EXPECT_EQ(title.Apply("hELLO"), "Hello");
}

TEST(DslTest, ProgramToStringIsReadable) {
  Program p{{Atom{Atom::Kind::kInitial, "", 0, CaseKind::kIdentity},
             Atom{Atom::Kind::kConst, ".", 0, CaseKind::kIdentity}}};
  EXPECT_EQ(p.ToString(), "Initial(0) + \".\"");
}

// The paper's own example: {(John Smith, J Smith), (Jane Doe, J Doe)}.
TEST(SynthesisTest, PaperNameAbbreviationExample) {
  auto prog = SynthesizeStringProgram({{"John Smith", "J Smith"},
                                       {"Jane Doe", "J Doe"}});
  ASSERT_TRUE(prog.ok()) << prog.status().ToString();
  const Program& p = prog.ValueOrDie();
  EXPECT_EQ(p.Apply("Alice Cooper"), "A Cooper");
  EXPECT_EQ(p.Apply("Bob Marley"), "B Marley");
}

TEST(SynthesisTest, FirstInitialDotLastName) {
  auto prog = SynthesizeStringProgram({{"john smith", "J. Smith"},
                                       {"mary jones", "M. Jones"}});
  ASSERT_TRUE(prog.ok()) << prog.status().ToString();
  EXPECT_EQ(prog.ValueOrDie().Apply("carol davis"), "C. Davis");
}

TEST(SynthesisTest, PhoneNumberReformat) {
  auto prog = SynthesizeStringProgram({{"555 123 4567", "555-123-4567"},
                                       {"800 555 0199", "800-555-0199"}});
  ASSERT_TRUE(prog.ok()) << prog.status().ToString();
  EXPECT_EQ(prog.ValueOrDie().Apply("212 867 5309"), "212-867-5309");
}

TEST(SynthesisTest, ReorderLastFirst) {
  auto prog = SynthesizeStringProgram({{"smith, john", "john smith"},
                                       {"doe, jane", "jane doe"}});
  ASSERT_TRUE(prog.ok()) << prog.status().ToString();
  EXPECT_EQ(prog.ValueOrDie().Apply("brown, bob"), "bob brown");
}

TEST(SynthesisTest, UppercaseNormalization) {
  auto prog = SynthesizeStringProgram({{"usa", "USA"}, {"uk", "UK"}});
  ASSERT_TRUE(prog.ok());
  EXPECT_EQ(prog.ValueOrDie().Apply("eu"), "EU");
}

TEST(SynthesisTest, SingleExampleGeneralizesViaTokenAtoms) {
  // With one example, token atoms are preferred over constants, so the
  // program generalizes rather than memorizes.
  auto prog = SynthesizeStringProgram({{"hello world", "world"}});
  ASSERT_TRUE(prog.ok());
  EXPECT_EQ(prog.ValueOrDie().Apply("foo bar"), "bar");
}

TEST(SynthesisTest, ImpossibleTaskReturnsNotFound) {
  // Output bears no relation to input and differs across examples.
  auto prog = SynthesizeStringProgram(
      {{"aaa", "xyz123"}, {"aaa", "completely different"}});
  EXPECT_FALSE(prog.ok());
  EXPECT_EQ(prog.status().code(), StatusCode::kNotFound);
}

TEST(SynthesisTest, EmptyExamplesRejected) {
  EXPECT_EQ(SynthesizeStringProgram({}).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(SynthesisTest, MoreExamplesPruneOverfitPrograms) {
  // One example admits the constant program; a second example kills it.
  auto one = SynthesizeStringProgram({{"a b", "b"}});
  ASSERT_TRUE(one.ok());
  auto two = SynthesizeStringProgram({{"a b", "b"}, {"c d", "d"}});
  ASSERT_TRUE(two.ok());
  EXPECT_EQ(two.ValueOrDie().Apply("x y"), "y");
}

class SemanticTransformTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    datagen::SemanticCorpus corpus = datagen::GenerateSemanticCorpus();
    embedding::Word2VecConfig cfg;
    cfg.sgns.dim = 32;
    cfg.sgns.epochs = 8;
    cfg.sgns.seed = 7;
    store_ = new embedding::EmbeddingStore(
        embedding::TrainWordEmbeddings(corpus.sentences, cfg));
    corpus_ = new datagen::SemanticCorpus(std::move(corpus));
  }
  static void TearDownTestSuite() {
    delete store_;
    delete corpus_;
    store_ = nullptr;
    corpus_ = nullptr;
  }
  static embedding::EmbeddingStore* store_;
  static datagen::SemanticCorpus* corpus_;
};

embedding::EmbeddingStore* SemanticTransformTest::store_ = nullptr;
datagen::SemanticCorpus* SemanticTransformTest::corpus_ = nullptr;

TEST_F(SemanticTransformTest, LearnsCountryToCapital) {
  // Train on 3 example pairs; apply to the remaining countries. This is
  // the Sec. 4 semantic-transformation task: {(France, Paris), (Germany,
  // Berlin)} -> learn "capital of".
  SemanticTransformLearner learner(store_);
  std::vector<Example> train;
  for (size_t i = 0; i < 3; ++i) {
    train.push_back(Example{corpus_->country_capitals[i].first,
                            corpus_->country_capitals[i].second});
  }
  ASSERT_TRUE(learner.Fit(train).ok());
  size_t hits = 0, total = 0;
  for (size_t i = 3; i < corpus_->country_capitals.size(); ++i) {
    auto top = learner.TransformTopK(corpus_->country_capitals[i].first, 3);
    if (!top.ok()) continue;
    ++total;
    for (const auto& n : top.ValueOrDie()) {
      if (n.key == corpus_->country_capitals[i].second) {
        ++hits;
        break;
      }
    }
  }
  ASSERT_GT(total, 0u);
  EXPECT_GE(hits * 3, total * 2)
      << hits << "/" << total << " capitals recovered in top-3";
}

TEST_F(SemanticTransformTest, MemorizesTrainingPairs) {
  SemanticTransformLearner learner(store_);
  ASSERT_TRUE(learner.Fit({{"france", "paris"}}).ok());
  EXPECT_EQ(learner.Transform("France").ValueOrDie(), "paris");
}

TEST_F(SemanticTransformTest, UnknownInputErrors) {
  SemanticTransformLearner learner(store_);
  ASSERT_TRUE(learner.Fit({{"france", "paris"}}).ok());
  EXPECT_FALSE(learner.Transform("atlantis").ok());
}

TEST_F(SemanticTransformTest, FitFailsWithoutEmbeddings) {
  SemanticTransformLearner learner(store_);
  EXPECT_FALSE(learner.Fit({{"nocoverage", "nothere"}}).ok());
  EXPECT_FALSE(learner.Fit({}).ok());
}

TEST(EtlTest, SynthesizesCopyTransformAndConstant) {
  data::Table source(data::Schema::OfStrings({"name", "city"}));
  ASSERT_TRUE(source.AppendRow({data::Value("john smith"),
                                data::Value("springfield")}).ok());
  ASSERT_TRUE(source.AppendRow({data::Value("mary jones"),
                                data::Value("riverton")}).ok());
  ASSERT_TRUE(source.AppendRow({data::Value("carol davis"),
                                data::Value("fairview")}).ok());

  data::Table target(data::Schema::OfStrings({"display", "city", "source"}));
  ASSERT_TRUE(target.AppendRow({data::Value("J. Smith"),
                                data::Value("springfield"),
                                data::Value("crm")}).ok());
  ASSERT_TRUE(target.AppendRow({data::Value("M. Jones"),
                                data::Value("riverton"),
                                data::Value("crm")}).ok());
  ASSERT_TRUE(target.AppendRow({data::Value("C. Davis"),
                                data::Value("fairview"),
                                data::Value("crm")}).ok());

  auto pipeline = SynthesizeEtl(source, target);
  ASSERT_TRUE(pipeline.ok()) << pipeline.status().ToString();
  const EtlPipeline& etl = pipeline.ValueOrDie();
  EXPECT_EQ(etl.rules[0].kind, ColumnRule::Kind::kTransform);
  EXPECT_EQ(etl.rules[1].kind, ColumnRule::Kind::kCopy);
  EXPECT_EQ(etl.rules[2].kind, ColumnRule::Kind::kConstant);

  // Apply to new data.
  data::Table more(source.schema());
  ASSERT_TRUE(more.AppendRow({data::Value("bob brown"),
                              data::Value("salem")}).ok());
  data::Table out = etl.Apply(more);
  EXPECT_EQ(out.at(0, 0).AsString(), "B. Brown");
  EXPECT_EQ(out.at(0, 1).AsString(), "salem");
  EXPECT_EQ(out.at(0, 2).AsString(), "crm");
}

TEST(EtlTest, UnexplainableColumnFails) {
  data::Table source(data::Schema::OfStrings({"a"}));
  ASSERT_TRUE(source.AppendRow({data::Value("x")}).ok());
  ASSERT_TRUE(source.AppendRow({data::Value("y")}).ok());
  data::Table target(data::Schema::OfStrings({"t"}));
  ASSERT_TRUE(target.AppendRow({data::Value("first-output")}).ok());
  ASSERT_TRUE(target.AppendRow({data::Value("totally unrelated")}).ok());
  auto pipeline = SynthesizeEtl(source, target);
  EXPECT_FALSE(pipeline.ok());
}

TEST(EtlTest, TargetLongerThanSourceRejected) {
  data::Table source(data::Schema::OfStrings({"a"}));
  ASSERT_TRUE(source.AppendRow({data::Value("x")}).ok());
  data::Table target(data::Schema::OfStrings({"t"}));
  ASSERT_TRUE(target.AppendRow({data::Value("x")}).ok());
  ASSERT_TRUE(target.AppendRow({data::Value("y")}).ok());
  EXPECT_EQ(SynthesizeEtl(source, target).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace autodc::synthesis
