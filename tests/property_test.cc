// Property-based tests: invariants that must hold across randomized
// inputs, swept with parameterized gtest.
#include <gtest/gtest.h>

#include "src/cleaning/repair.h"
#include "src/data/csv.h"
#include "src/data/dependencies.h"
#include "src/datagen/er_benchmark.h"
#include "src/er/blocking.h"
#include "src/er/evaluation.h"
#include "src/nn/tensor.h"
#include "src/synthesis/dsl.h"
#include "src/common/string_util.h"
#include "src/text/similarity.h"

namespace autodc {
namespace {

// ---------- CSV round trip over random tables --------------------------

class CsvRoundTripProperty : public ::testing::TestWithParam<uint64_t> {};

data::Table RandomTable(uint64_t seed) {
  Rng rng(seed);
  size_t ncols = static_cast<size_t>(rng.UniformInt(1, 5));
  std::vector<data::Column> cols;
  for (size_t c = 0; c < ncols; ++c) {
    cols.push_back(
        data::Column{"col" + std::to_string(c), data::ValueType::kString});
  }
  data::Table t{data::Schema(cols)};
  const char* nasty[] = {"plain",         "with,comma",  "with\"quote",
                         "with\nnewline", "",            "  spaces  ",
                         "ünïcödé-ish",   "a,b\",\"c",   "bare\rreturn",
                         "crlf\r\ninside"};
  size_t nrows = static_cast<size_t>(rng.UniformInt(0, 20));
  for (size_t r = 0; r < nrows; ++r) {
    data::Row row;
    for (size_t c = 0; c < ncols; ++c) {
      if (rng.Bernoulli(0.15)) {
        row.push_back(data::Value::Null());
      } else {
        row.push_back(data::Value(std::string(nasty[rng.UniformInt(0, 9)])));
      }
    }
    t.AppendRow(std::move(row));
  }
  return t;
}

TEST_P(CsvRoundTripProperty, WriteThenReadPreservesCells) {
  data::Table original = RandomTable(GetParam());
  std::string csv = data::WriteCsvString(original);
  auto reread = data::ReadCsvString(csv, data::CsvOptions{.infer_types = false});
  ASSERT_TRUE(reread.ok()) << reread.status().ToString();
  const data::Table& t = reread.ValueOrDie();
  if (original.num_rows() == 0) return;  // headers only
  ASSERT_EQ(t.num_rows(), original.num_rows());
  ASSERT_EQ(t.num_columns(), original.num_columns());
  for (size_t r = 0; r < t.num_rows(); ++r) {
    for (size_t c = 0; c < t.num_columns(); ++c) {
      // Nulls and empty strings are indistinguishable in CSV; compare
      // textual renderings.
      EXPECT_EQ(t.at(r, c).ToString(), original.at(r, c).ToString())
          << "cell (" << r << "," << c << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CsvRoundTripProperty,
                         ::testing::Range<uint64_t>(1, 16));

// ---------- FD repair invariants ---------------------------------------

class RepairProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RepairProperty, RepairEliminatesViolationsAndIsIdempotent) {
  Rng rng(GetParam());
  // Random table over small domains so FDs are violated organically.
  data::Table t(data::Schema::OfStrings({"a", "b", "c"}));
  size_t nrows = static_cast<size_t>(rng.UniformInt(5, 60));
  for (size_t r = 0; r < nrows; ++r) {
    t.AppendRow({data::Value("a" + std::to_string(rng.UniformInt(0, 3))),
                 data::Value("b" + std::to_string(rng.UniformInt(0, 5))),
                 data::Value("c" + std::to_string(rng.UniformInt(0, 2)))});
  }
  std::vector<data::FunctionalDependency> fds = {{{0}, 1}, {{0, 1}, 2}};
  cleaning::RepairFdViolations(&t, fds);
  EXPECT_TRUE(data::FindAllViolations(t, fds).empty());
  auto second = cleaning::RepairFdViolations(&t, fds);
  EXPECT_TRUE(second.empty()) << "repair is not idempotent";
}

INSTANTIATE_TEST_SUITE_P(Seeds, RepairProperty,
                         ::testing::Range<uint64_t>(1, 16));

// ---------- Synthesis soundness ----------------------------------------

class SynthesisSoundness : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SynthesisSoundness, SynthesizedProgramsReproduceTheirExamples) {
  // Random ground-truth program -> generate examples -> synthesize ->
  // the result must reproduce every example exactly (soundness), even if
  // it is not the same program.
  Rng rng(GetParam());
  const char* first[] = {"john", "mary", "carol", "frank", "diane"};
  const char* last[] = {"smith", "jones", "davis", "moore", "kim"};
  std::vector<synthesis::Example> examples;
  int variant = static_cast<int>(rng.UniformInt(0, 2));
  for (int i = 0; i < 3; ++i) {
    std::string f = first[rng.UniformInt(0, 4)];
    std::string l = last[rng.UniformInt(0, 4)];
    std::string in = f + " " + l;
    std::string out;
    switch (variant) {
      case 0:
        out = std::string(1, static_cast<char>(std::toupper(f[0]))) + ". " +
              ToUpper(l);
        break;
      case 1:
        out = l + ", " + f;
        break;
      default:
        out = ToUpper(f);
    }
    examples.push_back({in, out});
  }
  auto prog = synthesis::SynthesizeStringProgram(examples);
  ASSERT_TRUE(prog.ok()) << "variant " << variant << ": "
                         << prog.status().ToString();
  for (const synthesis::Example& e : examples) {
    EXPECT_EQ(prog.ValueOrDie().Apply(e.input), e.output);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SynthesisSoundness,
                         ::testing::Range<uint64_t>(1, 21));

// ---------- LSH candidate-set invariants --------------------------------

class LshProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LshProperty, CandidatesValidDeterministicAndMonotoneInTables) {
  Rng rng(GetParam());
  std::vector<std::vector<float>> left, right;
  for (int i = 0; i < 30; ++i) {
    std::vector<float> v(8), w(8);
    for (int d = 0; d < 8; ++d) {
      v[d] = static_cast<float>(rng.Normal());
      w[d] = static_cast<float>(rng.Normal());
    }
    left.push_back(v);
    right.push_back(w);
  }
  er::LshBlocker one(8, 6, 1, GetParam());
  er::LshBlocker four(8, 6, 4, GetParam());
  auto c1 = one.Candidates(left, right);
  auto c1_again = one.Candidates(left, right);
  auto c4 = four.Candidates(left, right);
  // Valid indices.
  for (const er::RowPair& p : c4) {
    EXPECT_LT(p.first, left.size());
    EXPECT_LT(p.second, right.size());
  }
  // Determinism.
  EXPECT_EQ(c1.size(), c1_again.size());
  // Monotone: more tables can only add candidate pairs (same planes for
  // table 0 since the seed prefixes match per-table hyperplanes).
  EXPECT_GE(c4.size(), c1.size());
  // Identical vectors always collide.
  auto self = one.Candidates(left, left);
  size_t diagonal = 0;
  for (const er::RowPair& p : self) {
    if (p.first == p.second) ++diagonal;
  }
  EXPECT_EQ(diagonal, left.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, LshProperty,
                         ::testing::Range<uint64_t>(1, 11));

// ---------- Tensor algebra invariants -----------------------------------

class TensorProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TensorProperty, MatMulAssociativityAndTransposeIdentities) {
  Rng rng(GetParam());
  nn::Tensor a = nn::Tensor::RandomUniform({3, 4}, 1.0f, &rng);
  nn::Tensor b = nn::Tensor::RandomUniform({4, 5}, 1.0f, &rng);
  nn::Tensor c = nn::Tensor::RandomUniform({5, 2}, 1.0f, &rng);
  nn::Tensor ab_c = nn::MatMul(nn::MatMul(a, b), c);
  nn::Tensor a_bc = nn::MatMul(a, nn::MatMul(b, c));
  ASSERT_TRUE(ab_c.SameShape(a_bc));
  for (size_t i = 0; i < ab_c.size(); ++i) {
    EXPECT_NEAR(ab_c[i], a_bc[i], 1e-4);
  }
  // MatMulTransB(a, b) == a * b^T computed directly.
  nn::Tensor bt({5, 4});
  for (size_t i = 0; i < 4; ++i) {
    for (size_t j = 0; j < 5; ++j) bt.at(j, i) = b.at(i, j);
  }
  nn::Tensor direct = nn::MatMul(a, b);
  nn::Tensor viaT = nn::MatMulTransB(a, bt);
  for (size_t i = 0; i < direct.size(); ++i) {
    EXPECT_NEAR(direct[i], viaT[i], 1e-4);
  }
  // MatMulTransA(a, x) == a^T * x.
  nn::Tensor x = nn::Tensor::RandomUniform({3, 2}, 1.0f, &rng);
  nn::Tensor at({4, 3});
  for (size_t i = 0; i < 3; ++i) {
    for (size_t j = 0; j < 4; ++j) at.at(j, i) = a.at(i, j);
  }
  nn::Tensor lhs = nn::MatMulTransA(a, x);
  nn::Tensor rhs = nn::MatMul(at, x);
  for (size_t i = 0; i < lhs.size(); ++i) {
    EXPECT_NEAR(lhs[i], rhs[i], 1e-4);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TensorProperty,
                         ::testing::Range<uint64_t>(1, 11));

// ---------- ER benchmark generator invariants ---------------------------

class ErBenchmarkProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ErBenchmarkProperty, MatchesAreBijectiveAndInRange) {
  datagen::ErBenchmarkConfig cfg;
  cfg.num_entities = 80;
  cfg.seed = GetParam();
  cfg.domain = static_cast<datagen::ErDomain>(GetParam() % 3);
  datagen::ErBenchmark bench = datagen::GenerateErBenchmark(cfg);
  std::vector<bool> left_used(bench.left.num_rows(), false);
  std::vector<bool> right_used(bench.right.num_rows(), false);
  for (const auto& [l, r] : bench.matches) {
    ASSERT_LT(l, bench.left.num_rows());
    ASSERT_LT(r, bench.right.num_rows());
    EXPECT_FALSE(left_used[l]) << "left row in two matches";
    EXPECT_FALSE(right_used[r]) << "right row in two matches";
    left_used[l] = true;
    right_used[r] = true;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ErBenchmarkProperty,
                         ::testing::Range<uint64_t>(1, 13));

}  // namespace
}  // namespace autodc
