// Tests for the synthetic data generators: perturbations preserve
// identity-relevant structure, the ER benchmark is well-formed and
// deterministic, the error injector's ground truth is exact, and the
// enterprise lake plants the advertised links.
#include <gtest/gtest.h>

#include "src/datagen/corpus.h"
#include "src/datagen/enterprise.h"
#include "src/datagen/er_benchmark.h"
#include "src/datagen/error_injector.h"
#include "src/datagen/perturb.h"
#include "src/text/similarity.h"

namespace autodc::datagen {
namespace {

TEST(PerturbTest, TypoChangesAtMostOneEditAway) {
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    std::string s = "hello world";
    std::string out = Typo(s, &rng);
    EXPECT_LE(text::LevenshteinDistance(s, out), 2u);  // transposition = 2
  }
  EXPECT_EQ(Typo("", &rng), "");
}

TEST(PerturbTest, AbbreviateFirstWord) {
  EXPECT_EQ(AbbreviateFirstWord("john smith"), "j. smith");
  EXPECT_EQ(AbbreviateFirstWord("solo"), "s.");
  EXPECT_EQ(AbbreviateFirstWord(""), "");
}

TEST(PerturbTest, SwapAndDropNeedTwoWords) {
  Rng rng(2);
  EXPECT_EQ(SwapAdjacentWords("single", &rng), "single");
  EXPECT_EQ(DropWord("single", &rng), "single");
  EXPECT_EQ(SwapAdjacentWords("a b", &rng), "b a");
  EXPECT_EQ(DropWord("a b", &rng).size(), 1u);
}

TEST(PerturbTest, ChangeCasePreservesLetters) {
  Rng rng(3);
  for (int i = 0; i < 20; ++i) {
    std::string out = ChangeCase("Hello World", &rng);
    std::string lower;
    for (char c : out) {
      if (!std::isspace(static_cast<unsigned char>(c)))
        lower += static_cast<char>(std::tolower(c));
    }
    EXPECT_EQ(lower, "helloworld");
  }
}

TEST(PerturbTest, JitterBounded) {
  Rng rng(4);
  for (int i = 0; i < 100; ++i) {
    double v = Jitter(100.0, 0.05, &rng);
    EXPECT_GE(v, 95.0);
    EXPECT_LE(v, 105.0);
  }
}

TEST(PerturbTest, PerturbRowKeepsNullsNull) {
  Rng rng(5);
  data::Row row = {data::Value("abc def"), data::Value::Null(),
                   data::Value(100.0)};
  PerturbRow(&row, 1.0, &rng);
  EXPECT_TRUE(row[1].is_null());
  EXPECT_EQ(row[0].type(), data::ValueType::kString);
  EXPECT_EQ(row[2].type(), data::ValueType::kDouble);
}

class ErBenchmarkDomainTest : public ::testing::TestWithParam<ErDomain> {};

TEST_P(ErBenchmarkDomainTest, WellFormedAndDeterministic) {
  ErBenchmarkConfig cfg;
  cfg.domain = GetParam();
  cfg.num_entities = 100;
  cfg.seed = 11;
  ErBenchmark a = GenerateErBenchmark(cfg);
  ErBenchmark b = GenerateErBenchmark(cfg);
  // Determinism.
  EXPECT_EQ(a.left.num_rows(), b.left.num_rows());
  EXPECT_EQ(a.matches, b.matches);
  ASSERT_GT(a.matches.size(), 0u);
  // Match indices are valid.
  for (const auto& [l, r] : a.matches) {
    EXPECT_LT(l, a.left.num_rows());
    EXPECT_LT(r, a.right.num_rows());
  }
  // Both tables share the domain schema.
  EXPECT_TRUE(a.left.schema() == a.right.schema());
  EXPECT_GT(a.left.num_columns(), 2u);
}

TEST_P(ErBenchmarkDomainTest, MatchedPairsAreMoreSimilarThanRandomPairs) {
  ErBenchmarkConfig cfg;
  cfg.domain = GetParam();
  cfg.num_entities = 150;
  cfg.dirtiness = 0.4;
  cfg.seed = 12;
  ErBenchmark bench = GenerateErBenchmark(cfg);
  auto row_text = [](const data::Table& t, size_t r) {
    std::string s;
    for (size_t c = 0; c < t.num_columns(); ++c) {
      s += t.at(r, c).ToString() + " ";
    }
    return s;
  };
  double match_sim = 0.0;
  for (const auto& [l, r] : bench.matches) {
    match_sim += text::TokenJaccard(row_text(bench.left, l),
                                    row_text(bench.right, r));
  }
  match_sim /= static_cast<double>(bench.matches.size());
  Rng rng(13);
  double random_sim = 0.0;
  size_t trials = 200;
  for (size_t i = 0; i < trials; ++i) {
    size_t l = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(bench.left.num_rows()) - 1));
    size_t r = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(bench.right.num_rows()) - 1));
    if (IsMatch(bench, l, r)) continue;
    random_sim += text::TokenJaccard(row_text(bench.left, l),
                                     row_text(bench.right, r));
  }
  random_sim /= static_cast<double>(trials);
  EXPECT_GT(match_sim, random_sim + 0.2);
}

INSTANTIATE_TEST_SUITE_P(AllDomains, ErBenchmarkDomainTest,
                         ::testing::Values(ErDomain::kProducts,
                                           ErDomain::kPersons,
                                           ErDomain::kCitations));

TEST(ErBenchmarkTest, DirtinessZeroMakesExactDuplicates) {
  ErBenchmarkConfig cfg;
  cfg.dirtiness = 0.0;
  cfg.synonym_rate = 0.0;
  cfg.num_entities = 50;
  ErBenchmark bench = GenerateErBenchmark(cfg);
  for (const auto& [l, r] : bench.matches) {
    for (size_t c = 0; c < bench.left.num_columns(); ++c) {
      EXPECT_EQ(bench.left.at(l, c), bench.right.at(r, c));
    }
  }
}

TEST(ErBenchmarkTest, OverlapControlsMatchCount) {
  ErBenchmarkConfig low;
  low.overlap = 0.1;
  low.num_entities = 400;
  ErBenchmarkConfig high = low;
  high.overlap = 0.9;
  EXPECT_GT(GenerateErBenchmark(high).matches.size(),
            GenerateErBenchmark(low).matches.size() * 3);
}

TEST(ErrorInjectorTest, GroundTruthMatchesActualCorruptions) {
  // Build a clean table, inject, then verify each recorded error cell
  // really differs from the clean value and every changed cell is
  // recorded (modulo stacked errors on the same cell, excluded here by
  // low rates and checking dirty != clean <=> recorded).
  data::Table clean(data::Schema::OfStrings({"city", "zip"}));
  const char* cities[] = {"springfield", "riverton", "fairview"};
  const char* zips[] = {"11111", "22222", "33333"};
  Rng rng(20);
  for (int i = 0; i < 200; ++i) {
    int k = static_cast<int>(rng.UniformInt(0, 2));
    ASSERT_TRUE(
        clean.AppendRow({data::Value(cities[k]), data::Value(zips[k])}).ok());
  }
  std::vector<data::FunctionalDependency> fds = {{{0}, 1}};
  ErrorInjectionConfig cfg;
  cfg.typo_rate = 0.05;
  cfg.null_rate = 0.05;
  cfg.fd_violation_rate = 0.05;
  InjectionResult result = InjectErrors(clean, fds, cfg);
  EXPECT_GT(result.errors.size(), 10u);
  for (const InjectedError& e : result.errors) {
    EXPECT_EQ(e.original, clean.at(e.row, e.col));
  }
  // Every cell that differs from clean is covered by some error record.
  size_t diff_cells = 0;
  for (size_t r = 0; r < clean.num_rows(); ++r) {
    for (size_t c = 0; c < clean.num_columns(); ++c) {
      if (!(result.dirty.at(r, c) == clean.at(r, c))) ++diff_cells;
    }
  }
  // Stacked errors on one cell produce one diff but >=1 records.
  EXPECT_LE(diff_cells, result.errors.size());
  EXPECT_GT(diff_cells, 0u);
}

TEST(ErrorInjectorTest, FdViolationsActuallyViolate) {
  data::Table clean(data::Schema::OfStrings({"country", "capital"}));
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(clean
                    .AppendRow({data::Value(i % 2 ? "france" : "italy"),
                                data::Value(i % 2 ? "paris" : "rome")})
                    .ok());
  }
  std::vector<data::FunctionalDependency> fds = {{{0}, 1}};
  EXPECT_TRUE(data::FindAllViolations(clean, fds).empty());
  ErrorInjectionConfig cfg;
  cfg.typo_rate = 0.0;
  cfg.null_rate = 0.0;
  cfg.outlier_rate = 0.0;
  cfg.fd_violation_rate = 0.2;
  InjectionResult result = InjectErrors(clean, fds, cfg);
  ASSERT_GT(result.errors.size(), 0u);
  EXPECT_FALSE(data::FindAllViolations(result.dirty, fds).empty());
}

TEST(ErrorInjectorTest, OutliersScaleNumericCells) {
  data::Table clean(data::Schema({{"v", data::ValueType::kDouble}}));
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(clean.AppendRow({data::Value(10.0)}).ok());
  }
  ErrorInjectionConfig cfg;
  cfg.typo_rate = 0;
  cfg.null_rate = 0;
  cfg.fd_violation_rate = 0;
  cfg.outlier_rate = 0.1;
  InjectionResult result = InjectErrors(clean, {}, cfg);
  ASSERT_GT(result.errors.size(), 5u);
  for (const InjectedError& e : result.errors) {
    EXPECT_EQ(e.kind, ErrorKind::kOutlier);
    EXPECT_GE(result.dirty.at(e.row, e.col).AsDouble(), 100.0 - 1e-9);
  }
}

TEST(SemanticCorpusTest, ContainsPlantedStructure) {
  SemanticCorpus corpus = GenerateSemanticCorpus();
  EXPECT_GT(corpus.sentences.size(), 1000u);
  EXPECT_GE(corpus.analogies.size(), 5u);
  EXPECT_EQ(corpus.country_capitals.size(), 8u);
  // Determinism.
  SemanticCorpus again = GenerateSemanticCorpus();
  EXPECT_EQ(corpus.sentences.size(), again.sentences.size());
  EXPECT_EQ(corpus.sentences[0], again.sentences[0]);
}

TEST(EnterpriseLakeTest, TablesAndLinksWellFormed) {
  EnterpriseLake lake = GenerateEnterpriseLake();
  EXPECT_EQ(lake.tables.size(), 7u);
  auto find_table = [&](const std::string& name) -> const data::Table* {
    for (const data::Table& t : lake.tables) {
      if (t.name() == name) return &t;
    }
    return nullptr;
  };
  for (const ColumnLink& link : lake.semantic_links) {
    const data::Table* a = find_table(link.table_a);
    const data::Table* b = find_table(link.table_b);
    ASSERT_NE(a, nullptr) << link.table_a;
    ASSERT_NE(b, nullptr) << link.table_b;
    EXPECT_TRUE(a->schema().IndexOf(link.column_a).has_value());
    EXPECT_TRUE(b->schema().IndexOf(link.column_b).has_value());
  }
  for (const auto& q : lake.queries) {
    EXPECT_NE(find_table(q.expected_table), nullptr);
  }
}

TEST(EnterpriseLakeTest, SemanticLinksShareValueVocabulary) {
  EnterpriseLake lake = GenerateEnterpriseLake();
  auto column_values = [&](const std::string& table,
                           const std::string& col) {
    for (const data::Table& t : lake.tables) {
      if (t.name() != table) continue;
      auto idx = t.schema().IndexOf(col);
      std::vector<std::string> out;
      for (const data::Value& v : t.DistinctColumnValues(*idx)) {
        out.push_back(v.ToString());
      }
      return out;
    }
    return std::vector<std::string>{};
  };
  auto overlap = [](const std::vector<std::string>& a,
                    const std::vector<std::string>& b) {
    size_t inter = 0;
    for (const std::string& x : a) {
      if (std::find(b.begin(), b.end(), x) != b.end()) ++inter;
    }
    return a.empty() ? 0.0 : static_cast<double>(inter) / a.size();
  };
  // protein <-> isoform share values heavily.
  auto p = column_values("protein_catalog", "protein");
  auto i = column_values("lab_results", "isoform");
  EXPECT_GT(overlap(p, i), 0.5);
  // The spurious pair shares nothing.
  auto bio = column_values("biopsies", "biopsy_site");
  auto inv = column_values("inventory", "site_components");
  EXPECT_DOUBLE_EQ(overlap(bio, inv), 0.0);
}

}  // namespace
}  // namespace autodc::datagen
