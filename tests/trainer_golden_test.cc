// Seed-equivalence guard for the Trainer refactor: with early stopping,
// validation, LR schedules, and checkpointing all off, every model's
// training loss must be bit-identical to the hand-rolled loops these
// values were captured from (pre-refactor seed, scalar kernels).
//
// Kernels are pinned to the scalar path for the whole fixture (same
// pattern as the SGNS scalar pin in parallel_test.cc), so the constants
// hold under both default and AVX2 builds and regardless of
// AUTODC_FORCE_SCALAR.
#include <gtest/gtest.h>

#include "src/data/table.h"
#include "src/embedding/embedding_store.h"
#include "src/er/baselines.h"
#include "src/er/deeper.h"
#include "src/nn/autoencoder.h"
#include "src/nn/classifier.h"
#include "src/nn/gan.h"
#include "src/nn/kernels.h"

namespace autodc {
namespace {

nn::Batch MakeData(size_t n, size_t d, Rng* rng) {
  nn::Batch x;
  for (size_t i = 0; i < n; ++i) {
    std::vector<float> row(d);
    for (size_t j = 0; j < d; ++j) {
      row[j] = static_cast<float>(rng->Uniform(-1, 1));
    }
    x.push_back(row);
  }
  return x;
}

class TrainerGoldenTest : public ::testing::Test {
 protected:
  void SetUp() override { nn::kernels::SetForceScalar(true); }
  void TearDown() override { nn::kernels::SetForceScalar(false); }
};

TEST_F(TrainerGoldenTest, BinaryClassifierPlain) {
  Rng rng(21);
  nn::Batch x = MakeData(48, 4, &rng);
  std::vector<int> y;
  for (const auto& r : x) y.push_back(r[0] + r[1] > 0 ? 1 : 0);
  nn::ClassifierConfig cfg;
  cfg.input_dim = 4;
  cfg.hidden = {8};
  cfg.learning_rate = 0.05f;
  nn::BinaryClassifier clf(cfg, &rng);
  EXPECT_EQ(clf.Train(x, y, 4, 16), 0x1.10fc3p-2);
}

TEST_F(TrainerGoldenTest, BinaryClassifierWeighted) {
  Rng rng(22);
  nn::Batch x = MakeData(48, 4, &rng);
  std::vector<int> y;
  for (const auto& r : x) y.push_back(r[0] > 0.4f ? 1 : 0);
  nn::ClassifierConfig cfg;
  cfg.input_dim = 4;
  cfg.hidden = {8};
  cfg.learning_rate = 0.05f;
  cfg.positive_weight = 3.0f;
  nn::BinaryClassifier clf(cfg, &rng);
  EXPECT_EQ(clf.Train(x, y, 4, 16), 0x1.1911ed5555555p+0);
}

TEST_F(TrainerGoldenTest, BinaryClassifierSoftLabels) {
  Rng rng(23);
  nn::Batch x = MakeData(32, 3, &rng);
  std::vector<double> probs;
  for (const auto& r : x) probs.push_back(r[0] > 0 ? 0.9 : 0.1);
  nn::ClassifierConfig cfg;
  cfg.input_dim = 3;
  cfg.hidden = {4};
  cfg.learning_rate = 0.05f;
  nn::BinaryClassifier clf(cfg, &rng);
  EXPECT_EQ(clf.TrainSoft(x, probs, 3, 8), 0x1.657c548p-1);
}

TEST_F(TrainerGoldenTest, MulticlassClassifier) {
  Rng rng(24);
  nn::Batch x = MakeData(48, 3, &rng);
  std::vector<size_t> y;
  for (const auto& r : x) y.push_back(r[0] > 0 ? (r[1] > 0 ? 2 : 1) : 0);
  nn::MulticlassClassifier clf(3, {8}, 3, 0.05f, &rng);
  EXPECT_EQ(clf.Train(x, y, 4, 16), 0x1.226decaaaaaabp-1);
}

TEST_F(TrainerGoldenTest, AutoencoderVariants) {
  nn::AutoencoderConfig cfg;
  cfg.input_dim = 6;
  cfg.hidden_dim = 3;
  cfg.activation = nn::Activation::kTanh;
  cfg.learning_rate = 0.01f;
  {
    Rng rng(25);
    nn::Batch data = MakeData(40, 6, &rng);
    nn::Autoencoder ae(nn::AutoencoderKind::kPlain, cfg, &rng);
    EXPECT_EQ(ae.Train(data, 5, 16), 0x1.25159faaaaaabp-2);
  }
  {
    Rng rng(25);
    nn::Batch data = MakeData(40, 6, &rng);
    nn::Autoencoder dae(nn::AutoencoderKind::kDenoising, cfg, &rng);
    EXPECT_EQ(dae.Train(data, 5, 16), 0x1.2a9054aaaaaabp-2);
  }
  {
    Rng rng(25);
    nn::Batch data = MakeData(40, 6, &rng);
    cfg.kl_weight = 0.05f;
    nn::Autoencoder vae(nn::AutoencoderKind::kVariational, cfg, &rng);
    EXPECT_EQ(vae.Train(data, 3, 16), 0x1.350c5ap+0);
  }
  {
    Rng rng(25);
    nn::Batch data = MakeData(40, 6, &rng);
    cfg.sparsity_weight = 0.05f;
    nn::Autoencoder sae(nn::AutoencoderKind::kSparse, cfg, &rng);
    EXPECT_EQ(sae.Train(data, 3, 16), 0x1.62fe2caaaaaabp-2);
  }
}

TEST_F(TrainerGoldenTest, Gan) {
  Rng rng(26);
  nn::Batch real;
  for (int i = 0; i < 40; ++i) {
    real.push_back({static_cast<float>(0.5 + rng.Uniform(-0.1, 0.1)),
                    static_cast<float>(-0.5 + rng.Uniform(-0.1, 0.1))});
  }
  nn::GanConfig cfg;
  cfg.latent_dim = 4;
  cfg.data_dim = 2;
  cfg.hidden_dim = 8;
  nn::Gan gan(cfg, &rng);
  nn::Gan::StepStats s = gan.Train(real, 3, 16);
  EXPECT_EQ(s.d_loss, 0x1.6d6c9ep+0);
  EXPECT_EQ(s.g_loss, 0x1.779024p-1);
  EXPECT_EQ(s.d_accuracy, 0x1.cp-2);
}

TEST_F(TrainerGoldenTest, DeepErLstm) {
  embedding::EmbeddingStore words(8);
  Rng wr(7);
  for (const char* w :
       {"sony", "tv", "apple", "phone", "red", "blue", "pro", "mini"}) {
    std::vector<float> v(8);
    for (auto& f : v) f = static_cast<float>(wr.Uniform(-0.5, 0.5));
    ASSERT_TRUE(words.Add(w, v).ok());
  }
  data::Table left(data::Schema::OfStrings({"name"}), "l");
  data::Table right(data::Schema::OfStrings({"name"}), "r");
  ASSERT_TRUE(left.AppendRow({data::Value("sony tv pro")}).ok());
  ASSERT_TRUE(left.AppendRow({data::Value("apple phone mini")}).ok());
  ASSERT_TRUE(left.AppendRow({data::Value("red tv")}).ok());
  ASSERT_TRUE(left.AppendRow({data::Value("blue phone")}).ok());
  ASSERT_TRUE(right.AppendRow({data::Value("sony tv")}).ok());
  ASSERT_TRUE(right.AppendRow({data::Value("apple phone")}).ok());
  ASSERT_TRUE(right.AppendRow({data::Value("red mini tv")}).ok());
  ASSERT_TRUE(right.AppendRow({data::Value("blue pro phone")}).ok());
  std::vector<er::PairLabel> pairs = {{0, 0, 1}, {1, 1, 1}, {2, 2, 1},
                                      {3, 3, 1}, {0, 1, 0}, {1, 0, 0},
                                      {2, 3, 0}, {3, 2, 0}};
  er::DeepErConfig cfg;
  cfg.composition = er::TupleComposition::kLstm;
  cfg.lstm_hidden = 4;
  cfg.epochs = 3;
  cfg.learning_rate = 0.01f;
  cfg.seed = 5;
  er::DeepEr model(&words, cfg);
  EXPECT_EQ(model.Train(left, right, pairs), 0x1.17d9a06p-1);
  // The Trainer result agrees with the returned loss and ran every epoch.
  EXPECT_EQ(model.last_train_result().epochs_run, 3u);
  EXPECT_FALSE(model.last_train_result().stopped_early);
  EXPECT_EQ(model.last_train_result().final_train_loss, 0x1.17d9a06p-1);
}

TEST_F(TrainerGoldenTest, FeatureMatcher) {
  data::Schema schema({{"name", data::ValueType::kString},
                       {"price", data::ValueType::kDouble}});
  data::Table left(schema, "l");
  data::Table right(schema, "r");
  ASSERT_TRUE(left.AppendRow({data::Value("widget pro"), data::Value(10.0)})
                  .ok());
  ASSERT_TRUE(left.AppendRow({data::Value("gadget max"), data::Value(25.0)})
                  .ok());
  ASSERT_TRUE(left.AppendRow({data::Value("doohickey"), data::Value(5.0)})
                  .ok());
  ASSERT_TRUE(right.AppendRow({data::Value("widget pro"), data::Value(10.5)})
                  .ok());
  ASSERT_TRUE(right.AppendRow({data::Value("gadget maxx"), data::Value(25.0)})
                  .ok());
  ASSERT_TRUE(right.AppendRow({data::Value("thingamajig"), data::Value(99.0)})
                  .ok());
  std::vector<er::PairLabel> pairs = {{0, 0, 1}, {1, 1, 1}, {2, 2, 0},
                                      {0, 1, 0}, {1, 0, 0}, {2, 0, 0}};
  er::FeatureMatcher fm(schema, {8}, 0.05f, 5, 11);
  EXPECT_EQ(fm.Train(left, right, pairs), 0x1.c397b4p-2);
}

}  // namespace
}  // namespace autodc
