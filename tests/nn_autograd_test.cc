// Tests for the autodiff engine: analytic gradients are verified against
// central-difference numerical gradients for every op, then end-to-end
// learning behavior is checked on small tasks.
#include <cmath>
#include <functional>

#include <gtest/gtest.h>

#include "src/nn/autograd.h"
#include "src/nn/layers.h"
#include "src/nn/optimizer.h"
#include "src/nn/rnn.h"

namespace autodc::nn {
namespace {

// Builds the graph via `make_loss` (which must read from the given
// parameters), backprops, and compares every analytic gradient against a
// numerical estimate.
void CheckGradients(const std::vector<VarPtr>& params,
                    const std::function<VarPtr()>& make_loss,
                    float tol = 2e-2f) {
  VarPtr loss = make_loss();
  ASSERT_EQ(loss->value.size(), 1u);
  for (const VarPtr& p : params) p->ZeroGrad();
  Backward(loss);

  const float h = 1e-3f;
  for (size_t pi = 0; pi < params.size(); ++pi) {
    const VarPtr& p = params[pi];
    ASSERT_EQ(p->grad.size(), p->value.size());
    for (size_t i = 0; i < p->value.size(); ++i) {
      float orig = p->value[i];
      p->value[i] = orig + h;
      float up = make_loss()->value[0];
      p->value[i] = orig - h;
      float down = make_loss()->value[0];
      p->value[i] = orig;
      float numeric = (up - down) / (2.0f * h);
      float analytic = p->grad[i];
      EXPECT_NEAR(analytic, numeric, tol)
          << "param " << pi << " element " << i;
    }
  }
}

TEST(AutogradTest, AddSubMulGradients) {
  Rng rng(1);
  VarPtr a = Parameter(Tensor::RandomUniform({4}, 1.0f, &rng));
  VarPtr b = Parameter(Tensor::RandomUniform({4}, 1.0f, &rng));
  CheckGradients({a, b}, [&]() { return Sum(Mul(Add(a, b), Sub(a, b))); });
}

TEST(AutogradTest, MatMulGradients) {
  Rng rng(2);
  VarPtr a = Parameter(Tensor::RandomUniform({3, 4}, 1.0f, &rng));
  VarPtr b = Parameter(Tensor::RandomUniform({4, 2}, 1.0f, &rng));
  CheckGradients({a, b}, [&]() { return Sum(MatMulOp(a, b)); });
}

TEST(AutogradTest, MatMulChainGradients) {
  Rng rng(3);
  VarPtr a = Parameter(Tensor::RandomUniform({2, 3}, 1.0f, &rng));
  VarPtr b = Parameter(Tensor::RandomUniform({3, 3}, 1.0f, &rng));
  VarPtr c = Parameter(Tensor::RandomUniform({3, 2}, 1.0f, &rng));
  CheckGradients(
      {a, b, c}, [&]() { return Sum(Square(MatMulOp(MatMulOp(a, b), c))); });
}

TEST(AutogradTest, AddBiasGradients) {
  Rng rng(4);
  VarPtr a = Parameter(Tensor::RandomUniform({3, 5}, 1.0f, &rng));
  VarPtr bias = Parameter(Tensor::RandomUniform({5}, 1.0f, &rng));
  CheckGradients({a, bias}, [&]() { return Sum(Square(AddBias(a, bias))); });
}

TEST(AutogradTest, ActivationGradients) {
  Rng rng(5);
  VarPtr a = Parameter(Tensor::RandomUniform({6}, 0.9f, &rng));
  CheckGradients({a}, [&]() { return Sum(Sigmoid(a)); });
  CheckGradients({a}, [&]() { return Sum(Tanh(a)); });
  CheckGradients({a}, [&]() { return Sum(LeakyRelu(a, 0.1f)); });
  CheckGradients({a}, [&]() { return Sum(Exp(a)); });
  CheckGradients({a}, [&]() { return Sum(Square(a)); });
}

TEST(AutogradTest, LogGradient) {
  Rng rng(6);
  VarPtr a = Parameter(Tensor::RandomUniform({5}, 0.4f, &rng));
  for (size_t i = 0; i < a->value.size(); ++i) {
    a->value[i] = std::fabs(a->value[i]) + 0.5f;  // keep away from eps
  }
  CheckGradients({a}, [&]() { return Sum(Log(a)); });
}

TEST(AutogradTest, MeanAndScaleGradients) {
  Rng rng(7);
  VarPtr a = Parameter(Tensor::RandomUniform({8}, 1.0f, &rng));
  CheckGradients({a}, [&]() { return Scale(Mean(Square(a)), 3.0f); });
}

TEST(AutogradTest, ConcatGradients) {
  Rng rng(8);
  VarPtr a = Parameter(Tensor::RandomUniform({3}, 1.0f, &rng));
  VarPtr b = Parameter(Tensor::RandomUniform({2}, 1.0f, &rng));
  CheckGradients({a, b}, [&]() { return Sum(Square(Concat({a, b}))); });
}

TEST(AutogradTest, RowsGatherGradients) {
  Rng rng(9);
  VarPtr m = Parameter(Tensor::RandomUniform({5, 3}, 1.0f, &rng));
  std::vector<size_t> idx = {0, 2, 2, 4};  // repeated row accumulates
  CheckGradients({m}, [&]() { return Sum(Square(Rows(m, idx))); });
}

TEST(AutogradTest, MeanRowsGradients) {
  Rng rng(10);
  VarPtr m = Parameter(Tensor::RandomUniform({4, 3}, 1.0f, &rng));
  CheckGradients({m}, [&]() { return Sum(Square(MeanRows(m))); });
}

TEST(AutogradTest, SoftmaxGradients) {
  Rng rng(11);
  VarPtr a = Parameter(Tensor::RandomUniform({2, 4}, 1.0f, &rng));
  // Weighted sum of softmax outputs so the gradient is nontrivial.
  Tensor w({2, 4});
  for (size_t i = 0; i < w.size(); ++i) w[i] = static_cast<float>(i + 1);
  CheckGradients(
      {a}, [&]() { return Sum(Mul(SoftmaxRows(a), Constant(w))); });
}

TEST(AutogradTest, MseLossGradients) {
  Rng rng(12);
  VarPtr a = Parameter(Tensor::RandomUniform({3, 2}, 1.0f, &rng));
  Tensor target = Tensor::RandomUniform({3, 2}, 1.0f, &rng);
  CheckGradients({a}, [&]() { return MseLoss(a, target); });
}

TEST(AutogradTest, BceWithLogitsGradients) {
  Rng rng(13);
  VarPtr a = Parameter(Tensor::RandomUniform({4, 1}, 2.0f, &rng));
  Tensor target({4, 1});
  target.at(0, 0) = 1.0f;
  target.at(2, 0) = 1.0f;
  CheckGradients({a}, [&]() { return BceWithLogitsLoss(a, target); });
}

TEST(AutogradTest, SoftmaxCrossEntropyGradients) {
  Rng rng(14);
  VarPtr a = Parameter(Tensor::RandomUniform({3, 4}, 1.5f, &rng));
  std::vector<size_t> labels = {1, 0, 3};
  CheckGradients({a},
                 [&]() { return SoftmaxCrossEntropyLoss(a, labels); });
}

TEST(AutogradTest, LinearLayerGradients) {
  Rng rng(15);
  Linear lin(3, 2, &rng);
  Tensor x = Tensor::RandomUniform({4, 3}, 1.0f, &rng);
  Tensor t = Tensor::RandomUniform({4, 2}, 1.0f, &rng);
  CheckGradients(lin.Parameters(), [&]() {
    return MseLoss(lin.Forward(Constant(x), true), t);
  });
}

TEST(AutogradTest, Conv1DGradients) {
  Rng rng(16);
  Conv1D conv(2, 3, 2, &rng);
  Tensor x = Tensor::RandomUniform({5, 2}, 1.0f, &rng);
  CheckGradients(conv.Parameters(), [&]() {
    return Sum(Square(conv.Forward(Constant(x), true)));
  });
}

TEST(AutogradTest, GlobalMaxPoolGradients) {
  Rng rng(17);
  VarPtr m = Parameter(Tensor::RandomUniform({4, 3}, 1.0f, &rng));
  CheckGradients({m}, [&]() { return Sum(Square(GlobalMaxPoolRows(m))); });
}

TEST(AutogradTest, RnnCellGradients) {
  Rng rng(18);
  RnnCell cell(3, 4, &rng);
  Tensor x0 = Tensor::RandomUniform({3}, 1.0f, &rng);
  Tensor x1 = Tensor::RandomUniform({3}, 1.0f, &rng);
  CheckGradients(cell.Parameters(), [&]() {
    VarPtr h = cell.InitialState();
    h = cell.Step(Constant(x0), h);
    h = cell.Step(Constant(x1), h);
    return Sum(Square(h));
  });
}

TEST(AutogradTest, LstmCellGradients) {
  Rng rng(19);
  LstmCell cell(2, 3, &rng);
  Tensor x0 = Tensor::RandomUniform({2}, 1.0f, &rng);
  Tensor x1 = Tensor::RandomUniform({2}, 1.0f, &rng);
  CheckGradients(cell.Parameters(), [&]() {
    LstmCell::State s = cell.InitialState();
    s = cell.Step(Constant(x0), s);
    s = cell.Step(Constant(x1), s);
    return Sum(Square(s.h));
  });
}

TEST(AutogradTest, BiLstmEncoderGradients) {
  Rng rng(20);
  LstmEncoder enc(2, 3, /*bidirectional=*/true, &rng);
  EXPECT_EQ(enc.output_dim(), 6u);
  std::vector<Tensor> xs;
  for (int i = 0; i < 3; ++i) {
    xs.push_back(Tensor::RandomUniform({2}, 1.0f, &rng));
  }
  CheckGradients(enc.Parameters(), [&]() {
    std::vector<VarPtr> seq;
    for (const Tensor& x : xs) seq.push_back(Constant(x));
    return Sum(Square(enc.Encode(seq)));
  });
}

TEST(AutogradTest, GradientAccumulatesAcrossSharedSubexpressions) {
  // f = (a+a) summed -> df/da = 2 everywhere.
  VarPtr a = Parameter(Tensor::Ones({3}));
  VarPtr loss = Sum(Add(a, a));
  Backward(loss);
  for (size_t i = 0; i < 3; ++i) EXPECT_FLOAT_EQ(a->grad[i], 2.0f);
}

TEST(AutogradTest, ConstantsReceiveNoGradient) {
  VarPtr c = Constant(Tensor::Ones({2}));
  VarPtr p = Parameter(Tensor::Ones({2}));
  VarPtr loss = Sum(Mul(c, p));
  Backward(loss);
  EXPECT_EQ(c->grad.size(), 0u);  // never allocated
  EXPECT_EQ(p->grad.size(), 2u);
}

TEST(AutogradTest, DeepChainDoesNotOverflowStack) {
  // 5000 chained ops exercise the iterative topological sort.
  VarPtr a = Parameter(Tensor::Ones({1}));
  VarPtr x = a;
  for (int i = 0; i < 5000; ++i) x = AddScalar(x, 0.0f);
  VarPtr loss = Sum(x);
  Backward(loss);
  EXPECT_FLOAT_EQ(a->grad[0], 1.0f);
}

TEST(TrainingTest, MlpLearnsXor) {
  Rng rng(21);
  auto mlp = Sequential::Mlp({2, 8, 1}, Activation::kTanh, &rng);
  Adam opt(mlp->Parameters(), 0.05f);
  Tensor x({4, 2}, {0, 0, 0, 1, 1, 0, 1, 1});
  Tensor y({4, 1}, {0, 1, 1, 0});
  double last = 1e9;
  for (int epoch = 0; epoch < 400; ++epoch) {
    VarPtr loss = BceWithLogitsLoss(mlp->Forward(Constant(x), true), y);
    last = loss->value[0];
    Backward(loss);
    opt.Step();
  }
  EXPECT_LT(last, 0.1);
  VarPtr out = mlp->Forward(Constant(x), false);
  EXPECT_LT(out->value.at(0, 0), 0.0f);
  EXPECT_GT(out->value.at(1, 0), 0.0f);
  EXPECT_GT(out->value.at(2, 0), 0.0f);
  EXPECT_LT(out->value.at(3, 0), 0.0f);
}

TEST(TrainingTest, LstmLearnsSequenceParity) {
  // Classify whether a +-1 sequence contains an even number of -1s: a
  // long-range dependency an order-insensitive model cannot capture.
  Rng rng(22);
  LstmEncoder enc(1, 8, false, &rng);
  Linear head(8, 1, &rng);
  std::vector<VarPtr> params = enc.Parameters();
  for (const VarPtr& p : head.Parameters()) params.push_back(p);
  Adam opt(params, 0.02f);

  auto make_example = [&](Rng* r, std::vector<Tensor>* xs) {
    int parity = 0;
    xs->clear();
    for (int t = 0; t < 4; ++t) {
      bool neg = r->Bernoulli(0.5);
      if (neg) parity ^= 1;
      Tensor v({1});
      v[0] = neg ? -1.0f : 1.0f;
      xs->push_back(v);
    }
    return parity;
  };

  Rng data_rng(7);
  for (int step = 0; step < 2500; ++step) {
    std::vector<Tensor> xs;
    int parity = make_example(&data_rng, &xs);
    std::vector<VarPtr> seq;
    for (const Tensor& t : xs) seq.push_back(Constant(t));
    VarPtr h = enc.Encode(seq);
    VarPtr logit = head.Forward(h, true);
    Tensor target({1, 1});
    target.at(0, 0) = static_cast<float>(parity);
    VarPtr loss = BceWithLogitsLoss(logit, target);
    Backward(loss);
    opt.ClipGradients(1.0f);
    opt.Step();
  }
  // Evaluate on fresh sequences.
  Rng eval_rng(99);
  int correct = 0;
  for (int i = 0; i < 50; ++i) {
    std::vector<Tensor> xs;
    int parity = make_example(&eval_rng, &xs);
    std::vector<VarPtr> seq;
    for (const Tensor& t : xs) seq.push_back(Constant(t));
    VarPtr logit = head.Forward(enc.Encode(seq), false);
    int pred = logit->value[0] > 0.0f ? 1 : 0;
    if (pred == parity) ++correct;
  }
  EXPECT_GE(correct, 40) << "LSTM failed to learn parity";
}

TEST(OptimizerTest, SgdConvergesOnQuadratic) {
  VarPtr w = Parameter(Tensor::Full({3}, 5.0f));
  Sgd opt({w}, 0.1f);
  for (int i = 0; i < 200; ++i) {
    VarPtr loss = Mean(Square(w));
    Backward(loss);
    opt.Step();
  }
  EXPECT_LT(w->value.Norm(), 1e-3);
}

TEST(OptimizerTest, MomentumConvergesOnQuadratic) {
  VarPtr w = Parameter(Tensor::Full({3}, 5.0f));
  Momentum opt({w}, 0.05f, 0.9f);
  for (int i = 0; i < 200; ++i) {
    VarPtr loss = Mean(Square(w));
    Backward(loss);
    opt.Step();
  }
  EXPECT_LT(w->value.Norm(), 1e-2);
}

TEST(OptimizerTest, AdamConvergesOnQuadratic) {
  VarPtr w = Parameter(Tensor::Full({3}, 5.0f));
  Adam opt({w}, 0.1f);
  for (int i = 0; i < 500; ++i) {
    VarPtr loss = Mean(Square(w));
    Backward(loss);
    opt.Step();
  }
  EXPECT_LT(w->value.Norm(), 1e-2);
}

TEST(OptimizerTest, GradientClippingBoundsUpdates) {
  VarPtr w = Parameter(Tensor::Full({2}, 100.0f));
  Sgd opt({w}, 1.0f);
  VarPtr loss = Sum(Square(w));  // grad = 200 per element
  Backward(loss);
  opt.ClipGradients(0.5f);
  EXPECT_FLOAT_EQ(w->grad[0], 0.5f);
  opt.Step();
  EXPECT_FLOAT_EQ(w->value[0], 99.5f);
}

TEST(DropoutTest, InferencePassesThroughAndTrainZeroesSome) {
  Rng rng(30);
  VarPtr x = Constant(Tensor::Ones({1000}));
  VarPtr kept = DropoutOp(x, 0.5f, /*train=*/false, &rng);
  EXPECT_EQ(kept.get(), x.get());  // no-op at inference
  VarPtr dropped = DropoutOp(x, 0.5f, /*train=*/true, &rng);
  size_t zeros = 0;
  for (size_t i = 0; i < dropped->value.size(); ++i) {
    if (dropped->value[i] == 0.0f) ++zeros;
    else EXPECT_FLOAT_EQ(dropped->value[i], 2.0f);  // inverted scaling
  }
  EXPECT_GT(zeros, 350u);
  EXPECT_LT(zeros, 650u);
}

}  // namespace
}  // namespace autodc::nn
