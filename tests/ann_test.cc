// Tests for src/ann (HNSW index) and its EmbeddingStore integration:
// recall against the exact scan, bulk/incremental equivalence, seeded
// determinism, degenerate inputs, and the parallel build + concurrent
// search paths the TSan leg exercises (`ctest -L ann`).
#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/ann/hnsw.h"
#include "src/common/parallel.h"
#include "src/common/rng.h"
#include "src/embedding/embedding_store.h"
#include "src/nn/kernels.h"

namespace autodc::ann {
namespace {

/// Clustered vectors — the geometry embeddings actually have. Pure
/// uniform noise has no neighbourhood structure and makes recall
/// meaningless as a regression signal.
std::vector<std::vector<float>> ClusteredVectors(size_t n, size_t dim,
                                                 size_t clusters,
                                                 uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<float>> centers(clusters);
  for (auto& c : centers) {
    c.resize(dim);
    for (float& x : c) x = static_cast<float>(rng.Normal());
  }
  std::vector<std::vector<float>> out(n);
  for (auto& v : out) {
    const std::vector<float>& c =
        centers[static_cast<size_t>(rng.UniformInt(0, clusters - 1))];
    v.resize(dim);
    for (size_t d = 0; d < dim; ++d) {
      v[d] = c[d] + static_cast<float>(rng.Normal(0.0, 0.3));
    }
  }
  return out;
}

std::vector<const float*> RowPtrs(const std::vector<std::vector<float>>& v) {
  std::vector<const float*> rows;
  rows.reserve(v.size());
  for (const auto& x : v) rows.push_back(x.data());
  return rows;
}

/// Exact top-k ids by cosine, (sim desc, id asc) — the recall reference.
std::vector<size_t> ExactTopK(const float* q,
                              const std::vector<std::vector<float>>& data,
                              size_t k) {
  std::vector<std::pair<double, size_t>> scored;
  for (size_t i = 0; i < data.size(); ++i) {
    scored.emplace_back(
        nn::kernels::CosineF32(q, data[i].data(), data[i].size()), i);
  }
  size_t take = std::min(k, scored.size());
  std::partial_sort(scored.begin(), scored.begin() + take, scored.end(),
                    [](const auto& a, const auto& b) {
                      return a.first > b.first ||
                             (a.first == b.first && a.second < b.second);
                    });
  std::vector<size_t> out;
  for (size_t i = 0; i < take; ++i) out.push_back(scored[i].second);
  return out;
}

TEST(HnswIndexTest, RecallAtTenIsAtLeast95OnClusteredData) {
  const size_t n = 2000, dim = 32, k = 10;
  auto data = ClusteredVectors(n, dim, 40, 123);
  HnswIndex index(dim);
  index.Build(RowPtrs(data));
  ASSERT_EQ(index.size(), n);

  auto queries = ClusteredVectors(60, dim, 40, 999);
  double recall_sum = 0.0;
  for (const auto& q : queries) {
    std::vector<size_t> truth = ExactTopK(q.data(), data, k);
    std::vector<ScoredId> hits = index.Search(q.data(), k);
    size_t overlap = 0;
    for (const ScoredId& h : hits) {
      if (std::find(truth.begin(), truth.end(), h.id) != truth.end()) {
        ++overlap;
      }
    }
    recall_sum += static_cast<double>(overlap) / static_cast<double>(k);
  }
  EXPECT_GE(recall_sum / queries.size(), 0.95);
}

TEST(HnswIndexTest, IncrementalAddEqualsBulkBuildWithinSequentialPrefix) {
  // Build() inserts one-by-one while the graph is inside
  // sequential_prefix, so the two construction paths must agree
  // exactly there.
  const size_t n = 600, dim = 16;
  auto data = ClusteredVectors(n, dim, 12, 7);
  HnswIndex bulk(dim);
  bulk.Build(RowPtrs(data));
  HnswIndex incremental(dim);
  for (const auto& v : data) incremental.Add(v.data());
  ASSERT_EQ(bulk.size(), incremental.size());
  EXPECT_EQ(bulk.num_edges(), incremental.num_edges());
  EXPECT_EQ(bulk.max_level(), incremental.max_level());

  auto queries = ClusteredVectors(20, dim, 12, 77);
  for (const auto& q : queries) {
    std::vector<ScoredId> a = bulk.Search(q.data(), 5);
    std::vector<ScoredId> b = incremental.Search(q.data(), 5);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].id, b[i].id);
      EXPECT_DOUBLE_EQ(a[i].similarity, b[i].similarity);
    }
  }
}

TEST(HnswIndexTest, SameSeedSameDataGivesIdenticalIndexAndResults) {
  const size_t n = 1500, dim = 24;  // past sequential_prefix: batched path
  auto data = ClusteredVectors(n, dim, 25, 42);
  HnswIndex a(dim), b(dim);
  a.Build(RowPtrs(data));
  b.Build(RowPtrs(data));
  EXPECT_EQ(a.num_edges(), b.num_edges());
  EXPECT_EQ(a.max_level(), b.max_level());
  auto queries = ClusteredVectors(15, dim, 25, 4242);
  for (const auto& q : queries) {
    std::vector<ScoredId> ra = a.Search(q.data(), 8);
    std::vector<ScoredId> rb = b.Search(q.data(), 8);
    ASSERT_EQ(ra.size(), rb.size());
    for (size_t i = 0; i < ra.size(); ++i) {
      EXPECT_EQ(ra[i].id, rb[i].id);
      EXPECT_DOUBLE_EQ(ra[i].similarity, rb[i].similarity);
    }
  }
}

TEST(HnswIndexTest, EmptyIndexReturnsNothing) {
  HnswIndex index(8);
  std::vector<float> q(8, 1.0f);
  EXPECT_TRUE(index.Search(q.data(), 5).empty());
  EXPECT_EQ(index.size(), 0u);
  EXPECT_EQ(index.max_level(), -1);
}

TEST(HnswIndexTest, SingleElementAndKLargerThanN) {
  HnswIndex index(4);
  std::vector<float> v = {1.0f, 0.0f, 0.0f, 0.0f};
  index.Add(v.data());
  std::vector<float> q = {0.5f, 0.5f, 0.0f, 0.0f};
  std::vector<ScoredId> hits = index.Search(q.data(), 10);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].id, 0u);
  EXPECT_NEAR(hits[0].similarity, 1.0 / std::sqrt(2.0), 1e-6);
}

TEST(HnswIndexTest, DuplicateVectorsTieBreakByLowerId) {
  HnswIndex index(3);
  std::vector<float> v = {1.0f, 2.0f, 3.0f};
  std::vector<float> other = {-1.0f, 0.0f, 1.0f};
  index.Add(v.data());
  index.Add(other.data());
  index.Add(v.data());  // exact duplicate of id 0
  std::vector<ScoredId> hits = index.Search(v.data(), 3);
  ASSERT_EQ(hits.size(), 3u);
  EXPECT_EQ(hits[0].id, 0u);  // ties: lower id first
  EXPECT_EQ(hits[1].id, 2u);
  EXPECT_DOUBLE_EQ(hits[0].similarity, hits[1].similarity);
  EXPECT_EQ(hits[2].id, 1u);
}

TEST(HnswIndexTest, ZeroNormRowsAndQueriesScoreZero) {
  HnswIndex index(4);
  std::vector<float> zero(4, 0.0f);
  std::vector<float> unit = {1.0f, 0.0f, 0.0f, 0.0f};
  index.Add(zero.data());
  index.Add(unit.data());
  std::vector<ScoredId> hits = index.Search(unit.data(), 2);
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0].id, 1u);
  EXPECT_DOUBLE_EQ(hits[1].similarity, 0.0);
  // A zero query matches nothing meaningfully but must not crash.
  std::vector<ScoredId> zhits = index.Search(zero.data(), 2);
  EXPECT_EQ(zhits.size(), 2u);
}

TEST(HnswIndexTest, ParallelBuildThenConcurrentSearches) {
  // Past sequential_prefix so batched (parallel) construction runs,
  // then hammer Search from the pool — the TSan leg's target.
  const size_t n = 2000, dim = 16;
  auto data = ClusteredVectors(n, dim, 30, 11);
  HnswIndex index(dim);
  index.Build(RowPtrs(data));
  auto queries = ClusteredVectors(64, dim, 30, 1111);
  std::vector<size_t> top_ids(queries.size());
  ParallelFor(0, queries.size(), 1, [&](size_t b, size_t e) {
    for (size_t i = b; i < e; ++i) {
      std::vector<ScoredId> hits = index.Search(queries[i].data(), 5);
      top_ids[i] = hits.empty() ? n : hits[0].id;
    }
  });
  for (size_t i = 0; i < queries.size(); ++i) {
    std::vector<ScoredId> hits = index.Search(queries[i].data(), 5);
    ASSERT_FALSE(hits.empty());
    EXPECT_EQ(top_ids[i], hits[0].id);
  }
}

TEST(EmbeddingStoreAnnTest, EnableAnnMatchesExactOnTopNeighbours) {
  const size_t n = 1200, dim = 16;
  auto data = ClusteredVectors(n, dim, 20, 5);
  embedding::EmbeddingStore store(dim);
  for (size_t i = 0; i < n; ++i) {
    ASSERT_TRUE(store.Add("k" + std::to_string(i), data[i]).ok());
  }
  auto queries = ClusteredVectors(25, dim, 20, 55);
  std::vector<std::vector<embedding::Neighbor>> exact;
  for (const auto& q : queries) exact.push_back(store.NearestToVector(q, 10));

  ASSERT_TRUE(store.EnableAnn().ok());
  ASSERT_TRUE(store.AnnActive());
  double recall_sum = 0.0;
  for (size_t i = 0; i < queries.size(); ++i) {
    std::vector<embedding::Neighbor> approx =
        store.NearestToVector(queries[i], 10);
    ASSERT_EQ(approx.size(), exact[i].size());
    size_t overlap = 0;
    for (const auto& a : approx) {
      for (const auto& e : exact[i]) {
        if (a.key == e.key) {
          // Shared hits carry the exact path's similarity bit-for-bit.
          EXPECT_DOUBLE_EQ(a.similarity, e.similarity);
          ++overlap;
          break;
        }
      }
    }
    recall_sum += static_cast<double>(overlap) / exact[i].size();
  }
  EXPECT_GE(recall_sum / queries.size(), 0.95);
}

TEST(EmbeddingStoreAnnTest, ExclusionsNeverSurfaceOnTheAnnPath) {
  const size_t n = 1200, dim = 12;
  auto data = ClusteredVectors(n, dim, 15, 9);
  embedding::EmbeddingStore store(dim);
  for (size_t i = 0; i < n; ++i) {
    ASSERT_TRUE(store.Add("k" + std::to_string(i), data[i]).ok());
  }
  ASSERT_TRUE(store.EnableAnn().ok());
  // Nearest(key) excludes the key itself even though its own vector is
  // the best match in the index.
  auto result = store.Nearest("k7", 5);
  ASSERT_TRUE(result.ok());
  for (const auto& nb : result.ValueOrDie()) EXPECT_NE(nb.key, "k7");
}

TEST(EmbeddingStoreAnnTest, OverwriteInvalidatesIndexAndAppendKeepsItLive) {
  const size_t n = 1100, dim = 8;
  auto data = ClusteredVectors(n, dim, 10, 3);
  embedding::EmbeddingStore store(dim);
  for (size_t i = 0; i < n; ++i) {
    ASSERT_TRUE(store.Add("k" + std::to_string(i), data[i]).ok());
  }
  ASSERT_TRUE(store.EnableAnn().ok());
  ASSERT_TRUE(store.AnnActive());

  // Appending a NEW key inserts incrementally; the index stays live and
  // can return the new key.
  std::vector<float> fresh = data[0];
  fresh[0] += 0.01f;
  ASSERT_TRUE(store.Add("brand_new", fresh).ok());
  EXPECT_TRUE(store.AnnActive());
  std::vector<embedding::Neighbor> hits = store.NearestToVector(fresh, 3);
  bool found = false;
  for (const auto& h : hits) found = found || h.key == "brand_new";
  EXPECT_TRUE(found);

  // Overwriting an EXISTING key goes stale: queries fall back to the
  // exact scan (correct results for the new value), until re-enabled.
  std::vector<float> replacement(dim, 0.0f);
  replacement[1] = 1.0f;
  ASSERT_TRUE(store.Add("k0", replacement).ok());
  EXPECT_FALSE(store.AnnActive());
  hits = store.NearestToVector(replacement, 1);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].key, "k0");
  EXPECT_NEAR(hits[0].similarity, 1.0, 1e-9);

  ASSERT_TRUE(store.EnableAnn().ok());
  EXPECT_TRUE(store.AnnActive());
  hits = store.NearestToVector(replacement, 1);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].key, "k0");

  store.DisableAnn();
  EXPECT_FALSE(store.AnnActive());
}

TEST(EmbeddingStoreAnnTest, CopyDropsIndexMoveCarriesIt) {
  const size_t n = 1100, dim = 8;
  auto data = ClusteredVectors(n, dim, 10, 21);
  embedding::EmbeddingStore store(dim);
  for (size_t i = 0; i < n; ++i) {
    ASSERT_TRUE(store.Add("k" + std::to_string(i), data[i]).ok());
  }
  ASSERT_TRUE(store.EnableAnn().ok());
  embedding::EmbeddingStore copy(store);
  EXPECT_FALSE(copy.AnnActive());
  EXPECT_EQ(copy.size(), store.size());
  embedding::EmbeddingStore moved(std::move(store));
  EXPECT_TRUE(moved.AnnActive());
}

TEST(HnswConfigTest, EnvOverridesEfSearch) {
  HnswConfig defaults;
  HnswConfig cfg = ConfigFromEnv();
  EXPECT_EQ(cfg.M, defaults.M);  // knobs unset -> defaults stand
  // AnnEnvEnabled is just the flag probe — must not throw either way.
  (void)AnnEnvEnabled();
}

}  // namespace
}  // namespace autodc::ann
