// The live observability plane (DESIGN.md §14): log-scale histogram
// bounds, bounded-cardinality labeled metrics (including the concurrent
// WithLabel path — a TSan subject), the sliding-window quantile
// estimator, the edge-triggered SLO tripwire, the background monitor's
// atomic snapshot-file writes, and the per-thread span buffer knob the
// serve workers use.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "src/common/json_parse.h"
#include "src/obs/live.h"
#include "src/obs/log.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace autodc::obs {
namespace {

MetricsRegistry& Reg() { return MetricsRegistry::Global(); }

// ---------- log-scale bounds ------------------------------------------

TEST(LogBoundsTest, OnePerDecadeIsSnappedPowersOfTen) {
  std::vector<double> b = Histogram::LogBounds(1.0, 1000.0, 1);
  ASSERT_EQ(b.size(), 4u);
  EXPECT_DOUBLE_EQ(b[0], 1.0);
  EXPECT_DOUBLE_EQ(b[1], 10.0);
  EXPECT_DOUBLE_EQ(b[2], 100.0);
  EXPECT_DOUBLE_EQ(b[3], 1000.0);
}

TEST(LogBoundsTest, StrictlyAscendingAndGeometric) {
  std::vector<double> b = Histogram::LogBounds(1.0, 1e6, 4);
  ASSERT_GE(b.size(), 2u);
  EXPECT_DOUBLE_EQ(b.front(), 1.0);
  EXPECT_DOUBLE_EQ(b.back(), 1e6);
  const double step = std::pow(10.0, 0.25);
  for (size_t i = 1; i < b.size(); ++i) {
    EXPECT_GT(b[i], b[i - 1]);
    EXPECT_NEAR(b[i] / b[i - 1], step, 1e-6);
  }
}

TEST(LogBoundsTest, MicrosecondPresetCoversServingLatencies) {
  std::vector<double> b = Histogram::LogBoundsUs();
  ASSERT_FALSE(b.empty());
  EXPECT_DOUBLE_EQ(b.front(), 1.0);   // 1us floor
  EXPECT_DOUBLE_EQ(b.back(), 1e7);    // 10s ceiling
  // 7 decades at 4 per decade plus the 1us floor bound.
  EXPECT_EQ(b.size(), 29u);
  // The old decade-wide default collapsed 100us..1ms into one bucket;
  // the preset must resolve inside that decade.
  size_t inside = 0;
  for (double x : b) {
    if (x > 100.0 && x < 1000.0) ++inside;
  }
  EXPECT_EQ(inside, 3u);
}

// ---------- labeled metrics -------------------------------------------

TEST(LabeledMetricsTest, ChildNameFormatAndRegistryVisibility) {
  EXPECT_EQ(LabeledMetricName("serve.completed", "tenant", "acme"),
            "serve.completed{tenant=acme}");

  LabeledCounter* lc = Reg().GetLabeledCounter("live_test.reqs", "tenant");
  Counter* acme = lc->WithLabel("acme");
  ASSERT_NE(acme, nullptr);
  EXPECT_EQ(acme->name(), "live_test.reqs{tenant=acme}");
  acme->Add(3);
  // Same label resolves to the same child; a different label does not.
  EXPECT_EQ(lc->WithLabel("acme"), acme);
  EXPECT_NE(lc->WithLabel("other"), acme);
  EXPECT_EQ(lc->cardinality(), 2u);

  // Children are ordinary registry metrics: every existing export path
  // (snapshot, exit dump, the live snapshot file) sees them for free.
  MetricsSnapshot snap = Reg().Snapshot();
  const CounterSample* s = snap.FindCounter("live_test.reqs{tenant=acme}");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->value, 3u);
}

TEST(LabeledMetricsTest, SameBaseAndKeyShareOneFamily) {
  LabeledCounter* a = Reg().GetLabeledCounter("live_test.fam", "tenant");
  LabeledCounter* b = Reg().GetLabeledCounter("live_test.fam", "tenant");
  EXPECT_EQ(a, b);
  // A different label key on the same base is a distinct family.
  LabeledCounter* c = Reg().GetLabeledCounter("live_test.fam", "kind");
  EXPECT_NE(a, c);
}

TEST(LabeledMetricsTest, CardinalityCapFoldsIntoOverflowChild) {
  LabeledCounter* lc =
      Reg().GetLabeledCounter("live_test.capped", "tenant", /*max=*/3);
  for (int i = 0; i < 3; ++i) {
    lc->WithLabel("t" + std::to_string(i))->Inc();
  }
  EXPECT_EQ(lc->cardinality(), 3u);

  // Every unseen label past the cap aliases the one _other child — an
  // adversarial tenant id stream cannot grow the registry unboundedly.
  Counter* spill1 = lc->WithLabel("surprise");
  Counter* spill2 = lc->WithLabel("another");
  ASSERT_NE(spill1, nullptr);
  EXPECT_EQ(spill1, spill2);
  EXPECT_EQ(spill1->name(), "live_test.capped{tenant=_other}");
  spill1->Inc();
  spill2->Inc();
  EXPECT_EQ(lc->cardinality(), 3u);
  EXPECT_EQ(spill1->Value(), 2u);
  // Pre-cap children keep resolving to themselves, not to _other.
  EXPECT_EQ(lc->WithLabel("t1")->name(), "live_test.capped{tenant=t1}");
}

TEST(LabeledMetricsTest, LabeledHistogramChildrenShareBounds) {
  std::vector<double> bounds = {1.0, 10.0, 100.0};
  LabeledHistogram* lh =
      Reg().GetLabeledHistogram("live_test.lat", "tenant", bounds);
  Histogram* h = lh->WithLabel("acme");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->bounds(), bounds);
  EXPECT_EQ(lh->WithLabel("zeta")->bounds(), bounds);
  h->Record(5.0);
  EXPECT_EQ(h->TotalCount(), 1u);
}

// The TSan subject: many threads resolving a mix of new and existing
// labels concurrently, with every increment landing exactly once.
TEST(LabeledMetricsTest, ConcurrentWithLabelIsExactAndRaceFree) {
  LabeledCounter* lc =
      Reg().GetLabeledCounter("live_test.conc", "tenant", /*max=*/8);
  constexpr int kThreads = 8;
  constexpr int kIters = 500;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([lc, t] {
      for (int i = 0; i < kIters; ++i) {
        // 12 distinct labels over a cap of 8: the tail contends on the
        // Materialize path and the overflow child simultaneously.
        lc->WithLabel("t" + std::to_string((t + i) % 12))->Inc();
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(lc->cardinality(), 8u);

  MetricsSnapshot snap = Reg().Snapshot();
  uint64_t total = 0;
  for (const CounterSample& c : snap.counters) {
    if (c.name.rfind("live_test.conc{", 0) == 0) total += c.value;
  }
  EXPECT_EQ(total, static_cast<uint64_t>(kThreads) * kIters);
}

// ---------- sliding-window quantiles ----------------------------------

TEST(SlidingQuantileTest, EmptyWindowIsNaN) {
  Histogram* h = Reg().GetHistogram("live_test.sq.empty", {1.0, 10.0, 100.0});
  SlidingQuantile sq(h, 4);
  EXPECT_EQ(sq.WindowCount(), 0u);
  EXPECT_TRUE(std::isnan(sq.Quantile(0.5)));
  sq.Tick();  // a tick over no recordings is still empty
  EXPECT_TRUE(std::isnan(sq.Quantile(0.99)));
}

TEST(SlidingQuantileTest, InterpolatesInsideTheCoveringBucket) {
  Histogram* h = Reg().GetHistogram("live_test.sq.interp", {10.0, 20.0, 40.0});
  SlidingQuantile sq(h, 4);
  // 10 samples in [10, 20): ranks 1..10 all land in bucket 1.
  for (int i = 0; i < 10; ++i) h->Record(15.0);
  sq.Tick();
  EXPECT_EQ(sq.WindowCount(), 10u);
  // p50 → rank 5 of 10 → halfway through [10, 20).
  EXPECT_NEAR(sq.Quantile(0.5), 15.0, 1e-9);
  EXPECT_NEAR(sq.Quantile(1.0), 20.0, 1e-9);
  // Values recorded before construction are not in the window: the
  // estimator seeds from the histogram's current cumulative counts.
  SlidingQuantile fresh(h, 4);
  fresh.Tick();
  EXPECT_EQ(fresh.WindowCount(), 0u);
}

TEST(SlidingQuantileTest, OverflowBucketClampsToTopBound) {
  Histogram* h = Reg().GetHistogram("live_test.sq.over", {10.0, 100.0});
  SlidingQuantile sq(h, 2);
  for (int i = 0; i < 4; ++i) h->Record(1e6);  // all overflow
  sq.Tick();
  EXPECT_DOUBLE_EQ(sq.Quantile(0.99), 100.0);
}

TEST(SlidingQuantileTest, WindowEvictsOldTicks) {
  Histogram* h = Reg().GetHistogram("live_test.sq.window", {10.0, 100.0});
  SlidingQuantile sq(h, 3);
  for (int i = 0; i < 8; ++i) h->Record(5.0);
  sq.Tick();  // the burst lands in tick 1
  EXPECT_EQ(sq.WindowCount(), 8u);
  sq.Tick();
  sq.Tick();
  EXPECT_EQ(sq.WindowCount(), 8u);  // still inside the 3-tick window
  sq.Tick();  // tick 4 evicts tick 1
  EXPECT_EQ(sq.WindowCount(), 0u);
  EXPECT_TRUE(std::isnan(sq.Quantile(0.99)));
  // The histogram itself is cumulative and unaffected by the window.
  EXPECT_EQ(h->TotalCount(), 8u);
}

TEST(SlidingQuantileTest, WindowTracksShiftingDistribution) {
  Histogram* h =
      Reg().GetHistogram("live_test.sq.shift", Histogram::LogBoundsUs());
  SlidingQuantile sq(h, 2);
  for (int i = 0; i < 100; ++i) h->Record(50.0);  // fast regime
  sq.Tick();
  double fast_p99 = sq.Quantile(0.99);
  for (int i = 0; i < 100; ++i) h->Record(5000.0);  // slow regime
  sq.Tick();
  sq.Tick();  // fast tick evicted; only the slow regime remains
  double slow_p99 = sq.Quantile(0.99);
  EXPECT_LT(fast_p99, 100.0);
  EXPECT_GT(slow_p99, 1000.0);
}

TEST(SlidingQuantileTest, SurvivesRegistryReset) {
  Histogram* h = Reg().GetHistogram("live_test.sq.reset", {10.0, 100.0});
  h->Record(5.0);
  SlidingQuantile sq(h, 4);
  Reg().ResetValues();  // cumulative counts shrink under the estimator
  h->Record(50.0);
  h->Record(50.0);
  sq.Tick();  // post-reset counts absorbed as this tick's delta
  EXPECT_EQ(sq.WindowCount(), 2u);
  EXPECT_NEAR(sq.Quantile(1.0), 100.0, 1e-9);
}

// ---------- SLO tripwire ----------------------------------------------

std::vector<LogRecord>* CapturedLogs() {
  static std::vector<LogRecord> logs;
  return &logs;
}
void CaptureLog(const LogRecord& r) { CapturedLogs()->push_back(r); }

size_t CountLogs(const std::string& needle) {
  size_t n = 0;
  for (const LogRecord& r : *CapturedLogs()) {
    if (r.message.find(needle) != std::string::npos) ++n;
  }
  return n;
}

TEST(SloTripwireTest, QueueDepthBreachIsEdgeTriggered) {
  ASSERT_FALSE(LiveMonitorRunning());
  Gauge* depth = Reg().GetGauge("serve.queue.depth");
  depth->Set(0.0);
  uint64_t breaches_before = 0;
  if (const Counter* c = Reg().FindCounter("serve.slo.breaches")) {
    breaches_before = c->Value();
  }

  LogLevel saved_level = GetLogLevel();
  SetLogLevel(LogLevel::kInfo);  // the recovery line is INFO
  CapturedLogs()->clear();
  SetLogSinkForTest(&CaptureLog);

  LiveMonitorConfig cfg;
  cfg.interval_ms = 3600 * 1000;  // never fires on its own
  cfg.slo.queue_depth = 10.0;
  ASSERT_TRUE(StartLiveMonitor(cfg));
  EXPECT_TRUE(LiveMonitorRunning());
  EXPECT_FALSE(StartLiveMonitor(cfg));  // one monitor at a time

  LiveMonitorTickForTest();  // depth 0: healthy
  EXPECT_EQ(Reg().FindGauge("serve.slo.breached.queue_depth")->Value(), 0.0);

  depth->Set(50.0);
  LiveMonitorTickForTest();  // breach entry
  LiveMonitorTickForTest();  // sustained breach
  LiveMonitorTickForTest();
  EXPECT_EQ(Reg().FindGauge("serve.slo.breached.queue_depth")->Value(), 1.0);

  depth->Set(2.0);
  LiveMonitorTickForTest();  // recovery
  EXPECT_EQ(Reg().FindGauge("serve.slo.breached.queue_depth")->Value(), 0.0);

  StopLiveMonitor();
  SetLogSinkForTest(nullptr);
  SetLogLevel(saved_level);
  EXPECT_FALSE(LiveMonitorRunning());

  // One breach entry → exactly one counter bump, regardless of how many
  // ticks the breach lasted.
  EXPECT_EQ(Reg().FindCounter("serve.slo.breaches")->Value(),
            breaches_before + 1);
#ifndef AUTODC_DISABLE_OBS
  // Edge-triggered logging: one WARN on entry, one INFO on recovery —
  // a sustained breach never spams.
  EXPECT_EQ(CountLogs("SLO breach: serve.queue.depth"), 1u);
  EXPECT_EQ(CountLogs("SLO recovered: serve.queue.depth"), 1u);
#endif
  CapturedLogs()->clear();
}

// ---------- the monitor end to end ------------------------------------

TEST(LiveMonitorTest, PublishesWindowQuantilesFromServeHistograms) {
  ASSERT_FALSE(LiveMonitorRunning());
  // The serve layer registers these on first request; here the test
  // stands in for it (same name, same log-scale bounds).
  Histogram* lat =
      Reg().GetHistogram("serve.latency_us", Histogram::LogBoundsUs());
  // Counters must exist before the first tick for that tick to seed the
  // rate window (observation never fabricates serve metrics).
  Counter* admit = Reg().GetCounter("serve.admit");
  Counter* reject = Reg().GetCounter("serve.reject.queue_full");

  LiveMonitorConfig cfg;
  cfg.interval_ms = 3600 * 1000;
  cfg.window_ticks = 4;
  ASSERT_TRUE(StartLiveMonitor(cfg));
  uint64_t tick0 = LiveMonitorTicks();
  LiveMonitorTickForTest();  // attaches the estimator, seeds the window
  for (int i = 0; i < 200; ++i) lat->Record(100.0);
  admit->Add(90);
  reject->Add(10);
  LiveMonitorTickForTest();
  EXPECT_EQ(LiveMonitorTicks(), tick0 + 2);

  const Gauge* p50 = Reg().FindGauge("serve.latency_p50");
  const Gauge* p99 = Reg().FindGauge("serve.latency_p99");
  ASSERT_NE(p50, nullptr);
  ASSERT_NE(p99, nullptr);
  // All 200 samples sit in the log bucket covering 100us.
  EXPECT_GT(p50->Value(), 50.0);
  EXPECT_LE(p50->Value(), 180.0);
  EXPECT_GE(p99->Value(), p50->Value());

  // Reject rate over the window: the 10 rejects / 100 attempts between
  // the two ticks show up exactly.
  const Gauge* rate = Reg().FindGauge("serve.reject_rate");
  ASSERT_NE(rate, nullptr);
  EXPECT_NEAR(rate->Value(), 0.1, 1e-9);

  StopLiveMonitor();
}

TEST(LiveMonitorTest, SnapshotFileIsAtomicallyRewrittenValidJson) {
  ASSERT_FALSE(LiveMonitorRunning());
  std::string path = testing::TempDir() + "/live_snap.json";
  std::remove(path.c_str());

  LiveMonitorConfig cfg;
  cfg.interval_ms = 3600 * 1000;
  cfg.snapshot_path = path;
  ASSERT_TRUE(StartLiveMonitor(cfg));
  LiveMonitorTickForTest();

  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "monitor tick did not write " << path;
  std::string body((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  auto parsed = ParseJson(body);
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  const JsonValue& doc = parsed.ValueOrDie();
  EXPECT_NE(doc.Find("ts_ms"), nullptr);
  EXPECT_NE(doc.Find("tick"), nullptr);
  const JsonValue* metrics = doc.Find("metrics");
  ASSERT_NE(metrics, nullptr);
  // The embedded snapshot carries the monitor's own tick gauge.
  bool saw_ticks = false;
  if (const JsonValue* gauges = metrics->Find("gauges")) {
    for (const auto& [name, v] : gauges->object) {
      (void)v;
      if (name == "obs.live.ticks") saw_ticks = true;
    }
  }
  EXPECT_TRUE(saw_ticks);

  // tmp + rename: no .tmp litter after a completed tick, and a reader
  // polling the path never sees a torn write.
  std::ifstream tmp(path + ".tmp");
  EXPECT_FALSE(tmp.good());

  // A second tick rewrites in place with a higher tick number.
  double tick1 = doc.Find("tick")->number_value;
  LiveMonitorTickForTest();
  std::ifstream in2(path);
  std::string body2((std::istreambuf_iterator<char>(in2)),
                    std::istreambuf_iterator<char>());
  auto parsed2 = ParseJson(body2);
  ASSERT_TRUE(parsed2.ok());
  EXPECT_GT(parsed2.ValueOrDie().Find("tick")->number_value, tick1);

  StopLiveMonitor();
  std::remove(path.c_str());
}

// ---------- per-thread span buffer knob -------------------------------

TEST(SpanBufferTest, ThreadCapBoundsBufferAndCountsDrops) {
  ClearSpans();
  std::thread worker([] {
    SetThreadSpanBufferCap(4);
    for (int i = 0; i < 10; ++i) {
      Span s("span" + std::to_string(i));
    }
    SetThreadSpanBufferCap(0);  // restore the library default
  });
  worker.join();
  std::vector<SpanRecord> spans = TakeSpans();
#ifdef AUTODC_DISABLE_OBS
  EXPECT_TRUE(spans.empty());
#else
  // Oldest-first drops: the 4 newest spans survive.
  ASSERT_EQ(spans.size(), 4u);
  EXPECT_EQ(spans.front().name, "span6");
  EXPECT_EQ(spans.back().name, "span9");
  EXPECT_GE(SpansDropped(), 6u);

  // The drop shows up in metric snapshots too (obs.spans.dropped gauge
  // via the span-buffer collector), so a starved trace is visible to
  // obs_top, not just to TakeSpans callers.
  MetricsSnapshot snap = Reg().Snapshot();
  const GaugeSample* dropped = snap.FindGauge("obs.spans.dropped");
  ASSERT_NE(dropped, nullptr);
  EXPECT_GE(dropped->value, 6.0);
  const GaugeSample* hwm = snap.FindGauge("obs.spans.hwm");
  ASSERT_NE(hwm, nullptr);
  EXPECT_GE(hwm->value, 4.0);
#endif
  ClearSpans();
}

}  // namespace
}  // namespace autodc::obs
