// Regression tests for checkpoint robustness: atomic file replacement
// (tmp + rename) and all-or-nothing loads — a truncated or corrupt
// checkpoint must be rejected before any parameter tensor is mutated.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/nn/autograd.h"
#include "src/nn/serialize.h"

namespace autodc::nn {
namespace {

std::vector<VarPtr> MakeParams() {
  return {Parameter(Tensor({2, 2}, {1.0f, 2.0f, 3.0f, 4.0f})),
          Parameter(Tensor({3}, {5.0f, 6.0f, 7.0f}))};
}

std::vector<float> Flatten(const std::vector<VarPtr>& params) {
  std::vector<float> out;
  for (const VarPtr& p : params) {
    for (size_t i = 0; i < p->value.size(); ++i) {
      out.push_back(p->value[i]);
    }
  }
  return out;
}

std::string SaveToString(const std::vector<VarPtr>& params) {
  std::ostringstream os(std::ios::binary);
  EXPECT_TRUE(SaveParameters(params, &os).ok());
  return os.str();
}

TEST(SerializeTest, RoundTripThroughFile) {
  std::vector<VarPtr> src = MakeParams();
  std::vector<VarPtr> dst = {Parameter(Tensor({2, 2})),
                             Parameter(Tensor({3}))};
  std::string path = ::testing::TempDir() + "/ckpt_roundtrip.bin";
  ASSERT_TRUE(SaveParametersToFile(src, path).ok());
  ASSERT_TRUE(LoadParametersFromFile(dst, path).ok());
  EXPECT_EQ(Flatten(dst), Flatten(src));
  std::remove(path.c_str());
}

TEST(SerializeTest, SaveLeavesNoTempFileBehind) {
  std::vector<VarPtr> params = MakeParams();
  std::string path = ::testing::TempDir() + "/ckpt_atomic.bin";
  ASSERT_TRUE(SaveParametersToFile(params, path).ok());
  std::ifstream tmp(path + ".tmp", std::ios::binary);
  EXPECT_FALSE(static_cast<bool>(tmp));  // tmp was renamed away
  std::ifstream final_file(path, std::ios::binary);
  EXPECT_TRUE(static_cast<bool>(final_file));
  std::remove(path.c_str());
}

TEST(SerializeTest, SaveOverwritesExistingCheckpointAtomically) {
  std::string path = ::testing::TempDir() + "/ckpt_overwrite.bin";
  std::vector<VarPtr> first = {Parameter(Tensor({2}, {1.0f, 2.0f}))};
  std::vector<VarPtr> second = {Parameter(Tensor({2}, {8.0f, 9.0f}))};
  ASSERT_TRUE(SaveParametersToFile(first, path).ok());
  ASSERT_TRUE(SaveParametersToFile(second, path).ok());
  std::vector<VarPtr> loaded = {Parameter(Tensor({2}))};
  ASSERT_TRUE(LoadParametersFromFile(loaded, path).ok());
  EXPECT_EQ(Flatten(loaded), Flatten(second));
  std::remove(path.c_str());
}

TEST(SerializeTest, SaveToUnwritableDirectoryFails) {
  std::vector<VarPtr> params = MakeParams();
  Status s = SaveParametersToFile(params, "no/such/dir/ckpt.bin");
  EXPECT_FALSE(s.ok());
}

TEST(SerializeTest, TruncatedCheckpointDoesNotMutateParams) {
  std::vector<VarPtr> src = MakeParams();
  std::string bytes = SaveToString(src);
  std::vector<VarPtr> dst = MakeParams();
  std::vector<float> before = Flatten(dst);
  // Every truncation point must fail cleanly AND leave dst untouched —
  // including cuts that land mid-way through the first tensor's data,
  // where a streaming loader would already have clobbered it.
  for (size_t cut : {size_t{0}, size_t{3}, size_t{4}, size_t{11},
                     size_t{12}, size_t{20}, bytes.size() / 2,
                     bytes.size() - 1}) {
    ASSERT_LT(cut, bytes.size());
    std::istringstream in(bytes.substr(0, cut), std::ios::binary);
    Status s = LoadParameters(dst, &in);
    EXPECT_FALSE(s.ok()) << "cut at " << cut;
    EXPECT_EQ(Flatten(dst), before) << "params mutated at cut " << cut;
  }
}

TEST(SerializeTest, CorruptMagicDoesNotMutateParams) {
  std::vector<VarPtr> src = MakeParams();
  std::string bytes = SaveToString(src);
  bytes[0] = 'X';
  std::vector<VarPtr> dst = MakeParams();
  std::vector<float> before = Flatten(dst);
  std::istringstream in(bytes, std::ios::binary);
  EXPECT_FALSE(LoadParameters(dst, &in).ok());
  EXPECT_EQ(Flatten(dst), before);
}

TEST(SerializeTest, CorruptShapeDoesNotMutateParams) {
  std::vector<VarPtr> src = MakeParams();
  std::string bytes = SaveToString(src);
  // Bytes 12..15 hold the first tensor's rank (uint32). An absurd rank
  // must be rejected up front, not used to size allocations.
  bytes[12] = static_cast<char>(0xFF);
  bytes[13] = static_cast<char>(0xFF);
  std::vector<VarPtr> dst = MakeParams();
  std::vector<float> before = Flatten(dst);
  std::istringstream in(bytes, std::ios::binary);
  EXPECT_FALSE(LoadParameters(dst, &in).ok());
  EXPECT_EQ(Flatten(dst), before);
}

TEST(SerializeTest, SecondTensorFailureRollsBackNothing) {
  // The first tensor parses fine; the stream dies inside the second.
  // A staged load must not commit the first tensor either.
  std::vector<VarPtr> src = MakeParams();
  std::string bytes = SaveToString(src);
  // Header(12) + tensor0 rank(4) + dims(16) + data(16) = 48; cut inside
  // tensor 1's payload.
  std::istringstream in(bytes.substr(0, bytes.size() - 4),
                        std::ios::binary);
  std::vector<VarPtr> dst = {Parameter(Tensor({2, 2})),
                             Parameter(Tensor({3}))};
  std::vector<float> before = Flatten(dst);
  EXPECT_FALSE(LoadParameters(dst, &in).ok());
  EXPECT_EQ(Flatten(dst), before);
}

}  // namespace
}  // namespace autodc::nn
