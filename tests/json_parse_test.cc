// Tests for the strict JSON reader (common/json_parse.h): value kinds,
// string escapes, structural errors with byte offsets, the depth limit,
// and a round trip through the in-tree writer (common/json.h).
#include <gtest/gtest.h>

#include <string>

#include "src/common/json.h"
#include "src/common/json_parse.h"

namespace autodc {
namespace {

JsonValue MustParse(const std::string& text) {
  auto parsed = ParseJson(text);
  EXPECT_TRUE(parsed.ok()) << parsed.status().message();
  return parsed.ok() ? std::move(parsed).ValueOrDie() : JsonValue{};
}

std::string MustFail(const std::string& text) {
  auto parsed = ParseJson(text);
  EXPECT_FALSE(parsed.ok()) << "parsed unexpectedly: " << text;
  return parsed.ok() ? "" : parsed.status().message();
}

TEST(JsonParseTest, ParsesEveryScalarKind) {
  EXPECT_TRUE(MustParse("null").is_null());
  EXPECT_TRUE(MustParse("true").bool_value);
  EXPECT_FALSE(MustParse("false").bool_value);
  EXPECT_EQ(MustParse("42").number_value, 42.0);
  EXPECT_EQ(MustParse("-3.5e2").number_value, -350.0);
  EXPECT_EQ(MustParse("\"hi\"").string_value, "hi");
}

TEST(JsonParseTest, ParsesNestedContainersWithWhitespace) {
  JsonValue v = MustParse(
      " {\n  \"a\": [1, 2, {\"b\": true}],\n  \"c\": {} \n} ");
  ASSERT_TRUE(v.is_object());
  const JsonValue* a = v.Find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  ASSERT_EQ(a->array.size(), 3u);
  EXPECT_EQ(a->array[1].number_value, 2.0);
  EXPECT_TRUE(a->array[2].Find("b")->bool_value);
  EXPECT_TRUE(v.Find("c")->is_object());
  EXPECT_TRUE(v.Find("c")->object.empty());
}

TEST(JsonParseTest, FindIsNullSafeOnNonObjects) {
  JsonValue v = MustParse("[1]");
  EXPECT_EQ(v.Find("anything"), nullptr);
  EXPECT_EQ(MustParse("{}").Find("missing"), nullptr);
}

TEST(JsonParseTest, AccessorsFallBackOnKindMismatch) {
  JsonValue v = MustParse("{\"n\": 1.5, \"s\": \"x\"}");
  EXPECT_EQ(v.Find("n")->NumberOr(-1), 1.5);
  EXPECT_EQ(v.Find("n")->StringOr("fb"), "fb");
  EXPECT_EQ(v.Find("s")->StringOr(""), "x");
  EXPECT_EQ(v.Find("s")->NumberOr(-1), -1.0);
}

TEST(JsonParseTest, DecodesEscapes) {
  JsonValue v =
      MustParse(R"("quote\" slash\\ solidus\/ \b\f\n\r\t uA")");
  EXPECT_EQ(v.string_value, "quote\" slash\\ solidus/ \b\f\n\r\t uA");
}

TEST(JsonParseTest, DecodesMultibyteUnicodeEscapes) {
  EXPECT_EQ(MustParse(R"("é")").string_value, "\xC3\xA9");      // é
  EXPECT_EQ(MustParse(R"("€")").string_value, "\xE2\x82\xAC");  // €
}

TEST(JsonParseTest, RejectsMalformedDocuments) {
  MustFail("");
  MustFail("{\"a\": }");
  MustFail("{\"a\" 1}");            // missing colon
  MustFail("[1, 2");                // unterminated array
  MustFail("{\"a\": 1,}");          // trailing comma
  MustFail("\"unterminated");
  MustFail(R"("bad \x escape")");
  MustFail(R"("trunc \u00")");
  MustFail("nul");                  // broken literal
  MustFail("1.2.3");                // malformed number
  MustFail("\"tab\tliteral\"");     // unescaped control character
}

TEST(JsonParseTest, RejectsTrailingContentWithByteOffset) {
  std::string message = MustFail("{} extra");
  EXPECT_NE(message.find("trailing characters"), std::string::npos);
  EXPECT_NE(message.find("byte 3"), std::string::npos);
}

TEST(JsonParseTest, EnforcesTheDepthLimit) {
  // 64 nested arrays parse; 70 do not.
  std::string ok(64, '[');
  ok += "1";
  ok.append(64, ']');
  EXPECT_TRUE(ParseJson(ok).ok());
  std::string deep(70, '[');
  deep += "1";
  deep.append(70, ']');
  std::string message = MustFail(deep);
  EXPECT_NE(message.find("nesting deeper"), std::string::npos);
}

TEST(JsonParseTest, RoundTripsTheInTreeWriter) {
  JsonObject o;
  o.Set("name", "bench \"x\"\n")
      .Set("count", size_t{3})
      .Set("ratio", 0.25)
      .SetRaw("nested", "{\"inner\":[1,2,null]}");
  JsonValue v = MustParse(o.str());
  EXPECT_EQ(v.Find("name")->StringOr(""), "bench \"x\"\n");
  EXPECT_EQ(v.Find("count")->NumberOr(-1), 3.0);
  EXPECT_EQ(v.Find("ratio")->NumberOr(-1), 0.25);
  const JsonValue* inner = v.Find("nested")->Find("inner");
  ASSERT_NE(inner, nullptr);
  ASSERT_EQ(inner->array.size(), 3u);
  EXPECT_TRUE(inner->array[2].is_null());
}

}  // namespace
}  // namespace autodc
