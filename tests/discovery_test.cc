// Tests for data discovery: coherent-group similarity, the semantic vs
// syntactic column matchers on the planted enterprise lake (the Sec. 5.1
// claims), the EKG, and the table search engine.
#include <gtest/gtest.h>

#include "src/datagen/enterprise.h"
#include "src/discovery/ekg.h"
#include "src/discovery/search.h"
#include "src/discovery/semantic_matcher.h"
#include "src/embedding/word2vec.h"

namespace autodc::discovery {
namespace {

TEST(CoherentGroupTest, AveragePairwiseSimilarity) {
  embedding::EmbeddingStore store;
  ASSERT_TRUE(store.Add("a", {1.0f, 0.0f}).ok());
  ASSERT_TRUE(store.Add("b", {1.0f, 0.0f}).ok());
  ASSERT_TRUE(store.Add("c", {0.0f, 1.0f}).ok());
  EXPECT_DOUBLE_EQ(CoherentGroupSimilarity(store, {"a"}, {"b"}), 1.0);
  EXPECT_DOUBLE_EQ(CoherentGroupSimilarity(store, {"a"}, {"c"}), 0.0);
  // Mixed group averages.
  EXPECT_NEAR(CoherentGroupSimilarity(store, {"a"}, {"b", "c"}), 0.5, 1e-9);
  // OOV tokens are skipped; fully-OOV groups score 0.
  EXPECT_DOUBLE_EQ(CoherentGroupSimilarity(store, {"zzz"}, {"a"}), 0.0);
  EXPECT_DOUBLE_EQ(CoherentGroupSimilarity(store, {"a", "zzz"}, {"b"}), 1.0);
}

TEST(BestMatchGroupTest, RewardsSharedVocabularyWithoutDilution) {
  embedding::EmbeddingStore store;
  ASSERT_TRUE(store.Add("alice", {1.0f, 0.0f, 0.0f}).ok());
  ASSERT_TRUE(store.Add("bob", {0.0f, 1.0f, 0.0f}).ok());
  ASSERT_TRUE(store.Add("carol", {0.0f, 0.0f, 1.0f}).ok());
  // The two groups share the same (internally dissimilar) vocabulary.
  std::vector<std::string> a = {"alice", "bob", "carol"};
  std::vector<std::string> b = {"carol", "alice", "bob"};
  // Pairwise average is diluted by cross-entity pairs; best-match is 1.
  EXPECT_LT(CoherentGroupSimilarity(store, a, b), 0.5);
  EXPECT_DOUBLE_EQ(BestMatchGroupSimilarity(store, a, b), 1.0);
  // Disjoint orthogonal vocabularies score 0 either way.
  ASSERT_TRUE(store.Add("widget", {-1.0f, 0.0f, 0.0f}).ok());
  EXPECT_LE(BestMatchGroupSimilarity(store, {"alice"}, {"widget"}), 0.0);
  // OOV-only groups score 0.
  EXPECT_DOUBLE_EQ(BestMatchGroupSimilarity(store, {"zzz"}, a), 0.0);
}

// Shared fixture: the enterprise lake with embeddings trained on it.
class LakeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    lake_ = new datagen::EnterpriseLake(datagen::GenerateEnterpriseLake());
    std::vector<const data::Table*> ptrs;
    for (const data::Table& t : lake_->tables) ptrs.push_back(&t);
    embedding::Word2VecConfig cfg;
    cfg.sgns.dim = 24;
    cfg.sgns.epochs = 10;
    cfg.sgns.seed = 3;
    words_ = new embedding::EmbeddingStore(
        embedding::TrainWordEmbeddingsFromTables(ptrs, cfg));
  }
  static void TearDownTestSuite() {
    delete lake_;
    delete words_;
    lake_ = nullptr;
    words_ = nullptr;
  }
  static std::vector<const data::Table*> TablePtrs() {
    std::vector<const data::Table*> ptrs;
    for (const data::Table& t : lake_->tables) ptrs.push_back(&t);
    return ptrs;
  }
  static double MatchScore(const std::vector<ColumnMatch>& matches,
                           const datagen::ColumnLink& link) {
    for (const ColumnMatch& m : matches) {
      if ((m.table_a == link.table_a && m.column_a == link.column_a &&
           m.table_b == link.table_b && m.column_b == link.column_b) ||
          (m.table_a == link.table_b && m.column_a == link.column_b &&
           m.table_b == link.table_a && m.column_b == link.column_a)) {
        return m.score;
      }
    }
    return -1.0;
  }

  static datagen::EnterpriseLake* lake_;
  static embedding::EmbeddingStore* words_;
};

datagen::EnterpriseLake* LakeTest::lake_ = nullptr;
embedding::EmbeddingStore* LakeTest::words_ = nullptr;

TEST_F(LakeTest, SemanticMatcherSurfacesPlantedLinks) {
  SemanticColumnMatcher matcher(words_);
  auto matches = matcher.MatchLake(TablePtrs());
  ASSERT_FALSE(matches.empty());
  // Every planted semantic link must outrank the spurious syntactic
  // pair (isoform<->protein beats biopsy_site<->site_components).
  double spurious = MatchScore(matches, lake_->spurious_links[0]);
  for (const datagen::ColumnLink& link : lake_->semantic_links) {
    double s = MatchScore(matches, link);
    EXPECT_GT(s, spurious)
        << link.table_a << "." << link.column_a << " <-> " << link.table_b
        << "." << link.column_b << " scored " << s << " vs spurious "
        << spurious;
  }
}

TEST_F(LakeTest, SyntacticMatcherFallsForSpuriousPair) {
  auto matches = SyntacticColumnMatches(TablePtrs());
  double spurious = MatchScore(matches, lake_->spurious_links[0]);
  // The name-overlap pair ranks high syntactically...
  double isoform = MatchScore(
      matches, datagen::ColumnLink{"protein_catalog", "protein",
                                   "lab_results", "isoform"});
  EXPECT_GT(spurious, isoform)
      << "the syntactic matcher should (wrongly) prefer the name-similar "
         "pair — that is exactly the Sec. 5.1 failure mode";
}

TEST_F(LakeTest, EkgLinksAndRelatedTables) {
  SemanticColumnMatcher matcher(words_);
  auto matches = matcher.MatchLake(TablePtrs());
  // Threshold at the weakest planted link so all of them make it in.
  double weakest = 1e9;
  for (const datagen::ColumnLink& link : lake_->semantic_links) {
    weakest = std::min(weakest, MatchScore(matches, link));
  }
  EnterpriseKnowledgeGraph ekg =
      EnterpriseKnowledgeGraph::Build(TablePtrs(), matches, weakest - 1e-9);
  for (const datagen::ColumnLink& link : lake_->semantic_links) {
    EXPECT_TRUE(ekg.AreLinked(link.table_a, link.column_a, link.table_b,
                              link.column_b))
        << link.table_a << "." << link.column_a;
  }
  auto related = ekg.RelatedTables("lab_results");
  ASSERT_FALSE(related.empty());
  // protein_catalog and experiments are both linked to lab_results.
  std::vector<std::string> names;
  for (const auto& [t, w] : related) {
    (void)w;
    names.push_back(t);
  }
  EXPECT_TRUE(std::find(names.begin(), names.end(), "protein_catalog") !=
              names.end());
  EXPECT_TRUE(std::find(names.begin(), names.end(), "experiments") !=
              names.end());
}

TEST_F(LakeTest, EkgNodeLookup) {
  EnterpriseKnowledgeGraph ekg =
      EnterpriseKnowledgeGraph::Build(TablePtrs(), {}, 1.0);
  EXPECT_GE(ekg.FindTable("orders"), 0);
  EXPECT_GE(ekg.FindColumn("orders", "customer"), 0);
  EXPECT_EQ(ekg.FindTable("nope"), -1);
  EXPECT_EQ(ekg.FindColumn("orders", "nope"), -1);
  EXPECT_FALSE(ekg.AreLinked("orders", "customer", "crm_contacts",
                             "client"));  // no matches supplied
}

TEST_F(LakeTest, SearchFindsExpectedTables) {
  TableSearchEngine engine(words_);
  engine.Index(TablePtrs());
  EXPECT_EQ(engine.num_indexed(), lake_->tables.size());
  size_t hits = 0;
  for (const auto& q : lake_->queries) {
    auto results = engine.Search(q.text);
    ASSERT_FALSE(results.empty());
    // Expected table in the top 2.
    for (size_t i = 0; i < std::min<size_t>(2, results.size()); ++i) {
      if (results[i].table == q.expected_table) {
        ++hits;
        break;
      }
    }
  }
  EXPECT_GE(hits, lake_->queries.size() - 1)
      << "search missed too many planted queries";
}

TEST_F(LakeTest, SearchWithRelatedExpandsResults) {
  SemanticColumnMatcher matcher(words_);
  auto matches = matcher.MatchLake(TablePtrs());
  EnterpriseKnowledgeGraph ekg =
      EnterpriseKnowledgeGraph::Build(TablePtrs(), matches, 0.3);
  TableSearchEngine engine(words_);
  engine.Index(TablePtrs());
  auto expanded = engine.SearchWithRelated("protein assay measurements", ekg);
  auto direct = engine.Search("protein assay measurements");
  EXPECT_GE(expanded.size(), direct.size());
}

}  // namespace
}  // namespace autodc::discovery
