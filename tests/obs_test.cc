// Tests for the observability layer: metric kinds, the sharded counter
// fast path under concurrent writers (run under TSan via the `obs`
// label), span nesting, exporters, and the compile-time kill switch.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "src/obs/export.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace autodc::obs {
namespace {

// Every test works against the global registry (there is only one), so
// each starts from zeroed values and drained spans.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SetEnabled(true);
    MetricsRegistry::Global().ResetValues();
    ClearSpans();
  }
};

TEST_F(ObsTest, CounterCountsAndResets) {
  Counter* c = MetricsRegistry::Global().GetCounter("test.counter");
  uint64_t before = c->Value();
  EXPECT_EQ(before, 0u);
  c->Inc();
  c->Add(41);
  EXPECT_EQ(c->Value(), 42u);
  MetricsRegistry::Global().ResetValues();
  EXPECT_EQ(c->Value(), 0u);  // same pointer, zeroed in place
}

TEST_F(ObsTest, RegistryReturnsSamePointerForSameName) {
  auto& reg = MetricsRegistry::Global();
  EXPECT_EQ(reg.GetCounter("test.same"), reg.GetCounter("test.same"));
  EXPECT_EQ(reg.GetGauge("test.same.g"), reg.GetGauge("test.same.g"));
  EXPECT_EQ(reg.GetHistogram("test.same.h"), reg.GetHistogram("test.same.h"));
}

TEST_F(ObsTest, ConcurrentCounterWritersLoseNothing) {
  Counter* c = MetricsRegistry::Global().GetCounter("test.concurrent");
  constexpr int kThreads = 8;
  constexpr int kIncrements = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([c]() {
      for (int i = 0; i < kIncrements; ++i) c->Inc();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c->Value(), static_cast<uint64_t>(kThreads) * kIncrements);
}

TEST_F(ObsTest, ConcurrentMixedWritersAreRaceFree) {
  // Counters, gauges, and histograms hammered from several threads while
  // another thread snapshots — the TSan leg proves this is data-race
  // free; the assertions prove nothing deadlocks or loses counts.
  auto& reg = MetricsRegistry::Global();
  Counter* c = reg.GetCounter("test.mixed.c");
  Gauge* g = reg.GetGauge("test.mixed.g");
  Histogram* h = reg.GetHistogram("test.mixed.h");
  std::atomic<bool> stop{false};
  std::thread snapshotter([&]() {
    while (!stop.load()) {
      MetricsSnapshot snap = reg.Snapshot();
      (void)snap;
    }
  });
  constexpr int kThreads = 4;
  constexpr int kOps = 5000;
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t]() {
      for (int i = 0; i < kOps; ++i) {
        c->Inc();
        g->Set(static_cast<double>(t));
        h->Record(static_cast<double>(i % 100));
      }
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true);
  snapshotter.join();
  EXPECT_EQ(c->Value(), static_cast<uint64_t>(kThreads) * kOps);
  EXPECT_EQ(h->TotalCount(), static_cast<uint64_t>(kThreads) * kOps);
}

TEST_F(ObsTest, GaugeSetAndAdd) {
  Gauge* g = MetricsRegistry::Global().GetGauge("test.gauge");
  g->Set(2.5);
  EXPECT_DOUBLE_EQ(g->Value(), 2.5);
  g->Add(1.5);
  EXPECT_DOUBLE_EQ(g->Value(), 4.0);
}

TEST_F(ObsTest, HistogramBucketsAreUpperExclusive) {
  Histogram* h = MetricsRegistry::Global().GetHistogram(
      "test.hist.buckets", {1.0, 10.0, 100.0});
  // Bucket layout: [<1), [1,10), [10,100), [>=100].
  h->Record(0.5);
  h->Record(1.0);  // exactly on a bound -> next bucket up
  h->Record(9.99);
  h->Record(50.0);
  h->Record(1000.0);
  std::vector<uint64_t> counts = h->BucketCounts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 1u);
  EXPECT_EQ(counts[1], 2u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(counts[3], 1u);
  EXPECT_EQ(h->TotalCount(), 5u);
  EXPECT_DOUBLE_EQ(h->Min(), 0.5);
  EXPECT_DOUBLE_EQ(h->Max(), 1000.0);
}

TEST_F(ObsTest, EmptyHistogramMinMaxAreNaN) {
  Histogram* h = MetricsRegistry::Global().GetHistogram("test.hist.empty");
  EXPECT_EQ(h->TotalCount(), 0u);
  EXPECT_TRUE(std::isnan(h->Min()));
  EXPECT_TRUE(std::isnan(h->Max()));
}

TEST_F(ObsTest, SetEnabledPausesRecording) {
  auto& reg = MetricsRegistry::Global();
  Counter* c = reg.GetCounter("test.paused.c");
  Gauge* g = reg.GetGauge("test.paused.g");
  Histogram* h = reg.GetHistogram("test.paused.h");
  SetEnabled(false);
  c->Inc();
  g->Set(9.0);
  h->Record(1.0);
  SetEnabled(true);
  EXPECT_EQ(c->Value(), 0u);
  EXPECT_DOUBLE_EQ(g->Value(), 0.0);
  EXPECT_EQ(h->TotalCount(), 0u);
}

TEST_F(ObsTest, SnapshotIsNameSortedAndComplete) {
  auto& reg = MetricsRegistry::Global();
  reg.GetCounter("test.snap.b")->Inc();
  reg.GetCounter("test.snap.a")->Add(2);
  reg.GetGauge("test.snap.g")->Set(1.25);
  reg.GetHistogram("test.snap.h")->Record(3.0);
  MetricsSnapshot snap = reg.Snapshot();
  for (size_t i = 1; i < snap.counters.size(); ++i) {
    EXPECT_LT(snap.counters[i - 1].name, snap.counters[i].name);
  }
  const CounterSample* a = snap.FindCounter("test.snap.a");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->value, 2u);
  const GaugeSample* g = snap.FindGauge("test.snap.g");
  ASSERT_NE(g, nullptr);
  EXPECT_DOUBLE_EQ(g->value, 1.25);
  const HistogramSample* h = snap.FindHistogram("test.snap.h");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 1u);
  EXPECT_DOUBLE_EQ(h->sum, 3.0);
}

TEST_F(ObsTest, CollectorsRunBeforeSnapshotReads) {
  auto& reg = MetricsRegistry::Global();
  static std::atomic<int> calls{0};
  // Collectors may themselves call GetGauge/Set — they run outside the
  // registry mutex.
  reg.AddCollector([&reg]() {
    reg.GetGauge("test.collected")->Set(static_cast<double>(++calls));
  });
  MetricsSnapshot snap = reg.Snapshot();
  const GaugeSample* g = snap.FindGauge("test.collected");
  ASSERT_NE(g, nullptr);
  EXPECT_GE(g->value, 1.0);
}

#ifndef AUTODC_DISABLE_OBS

TEST_F(ObsTest, MacrosRecordThroughCachedPointers) {
  for (int i = 0; i < 3; ++i) {
    AUTODC_OBS_INC("test.macro.count");
    AUTODC_OBS_GAUGE_SET("test.macro.gauge", 1.5 * i);
    AUTODC_OBS_HIST("test.macro.hist", static_cast<double>(i));
  }
  auto& reg = MetricsRegistry::Global();
  EXPECT_EQ(reg.GetCounter("test.macro.count")->Value(), 3u);
  EXPECT_DOUBLE_EQ(reg.GetGauge("test.macro.gauge")->Value(), 3.0);
  EXPECT_EQ(reg.GetHistogram("test.macro.hist")->TotalCount(), 3u);
}

TEST_F(ObsTest, SpansNestWithParentChildLinks) {
  {
    Span outer("outer");
    { Span inner("inner"); }
  }
  std::vector<SpanRecord> spans = TakeSpans();
  ASSERT_EQ(spans.size(), 2u);
  // Sorted by start time: outer starts first.
  EXPECT_EQ(spans[0].name, "outer");
  EXPECT_EQ(spans[1].name, "inner");
  EXPECT_EQ(spans[0].parent_id, 0u);
  EXPECT_EQ(spans[0].depth, 0u);
  EXPECT_EQ(spans[1].parent_id, spans[0].id);
  EXPECT_EQ(spans[1].depth, 1u);
}

TEST_F(ObsTest, TakeSpansDrains) {
  { Span s("once"); }
  EXPECT_EQ(TakeSpans().size(), 1u);
  EXPECT_TRUE(TakeSpans().empty());
}

TEST_F(ObsTest, SpansFromMultipleThreadsAllArrive) {
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([]() {
      for (int i = 0; i < 10; ++i) {
        Span s("worker-span");
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(TakeSpans().size(), static_cast<size_t>(kThreads) * 10);
}

TEST_F(ObsTest, DisabledSpansAreNotRecorded) {
  SetEnabled(false);
  { Span s("invisible"); }
  SetEnabled(true);
  EXPECT_TRUE(TakeSpans().empty());
}

TEST_F(ObsTest, ScopedTimerRecordsIntoHistogram) {
  Histogram* h = MetricsRegistry::Global().GetHistogram("test.timer");
  { ScopedTimer t(h); }
  EXPECT_EQ(h->TotalCount(), 1u);
  EXPECT_GE(h->Max(), 0.0);
}

#else  // AUTODC_DISABLE_OBS

TEST_F(ObsTest, MacrosCompileToNothingWhenDisabled) {
  size_t before = MetricsRegistry::Global().num_metrics();
  AUTODC_OBS_INC("test.disabled.count");
  AUTODC_OBS_GAUGE_SET("test.disabled.gauge", 1.0);
  AUTODC_OBS_HIST("test.disabled.hist", 1.0);
  AUTODC_OBS_SPAN(span, "test.disabled.span");
  EXPECT_EQ(MetricsRegistry::Global().num_metrics(), before);
  EXPECT_TRUE(TakeSpans().empty());
}

#endif  // AUTODC_DISABLE_OBS

TEST_F(ObsTest, FormatTextListsEveryMetricKind) {
  auto& reg = MetricsRegistry::Global();
  reg.GetCounter("test.text.counter")->Add(5);
  reg.GetGauge("test.text.gauge")->Set(2.5);
  reg.GetHistogram("test.text.hist", {1.0, 10.0})->Record(3.0);
  std::string text = FormatText(reg.Snapshot());
  EXPECT_NE(text.find("test.text.counter"), std::string::npos);
  EXPECT_NE(text.find("test.text.gauge"), std::string::npos);
  EXPECT_NE(text.find("test.text.hist"), std::string::npos);
  EXPECT_NE(text.find("count=1"), std::string::npos);
}

TEST_F(ObsTest, FormatJsonIsWellFormedAndMapsNaNToNull) {
  auto& reg = MetricsRegistry::Global();
  reg.GetCounter("test.json.counter")->Add(7);
  reg.GetHistogram("test.json.empty");  // count 0 -> NaN min/max -> null
  std::string json = FormatJson(reg.Snapshot());
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"test.json.counter\":7"), std::string::npos);
  EXPECT_NE(json.find("\"min\":null"), std::string::npos);
  EXPECT_EQ(json.find("nan"), std::string::npos);
}

TEST_F(ObsTest, WriteSnapshotAppendsToFile) {
  MetricsRegistry::Global().GetCounter("test.file.counter")->Inc();
  std::string path = ::testing::TempDir() + "/obs_snapshot.txt";
  std::remove(path.c_str());
  ASSERT_TRUE(WriteSnapshot(path));
  std::ifstream in(path);
  ASSERT_TRUE(static_cast<bool>(in));
  std::stringstream buf;
  buf << in.rdbuf();
  std::string content = buf.str();
  EXPECT_NE(content.find("=== autodc metrics snapshot ==="),
            std::string::npos);
  EXPECT_NE(content.find("METRICS_JSON {"), std::string::npos);
  std::remove(path.c_str());
}

TEST_F(ObsTest, WriteSnapshotRejectsUnopenablePath) {
  EXPECT_FALSE(WriteSnapshot("no/such/dir/obs.txt"));
}

}  // namespace
}  // namespace autodc::obs
