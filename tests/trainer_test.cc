// Behavioural tests for the shared Trainer runtime (early stopping, LR
// schedules, validation splits, checkpointing) plus checkpoint
// round-trips for every model type that trains through it.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <memory>
#include <set>
#include <string>

#include "src/data/table.h"
#include "src/embedding/embedding_store.h"
#include "src/er/deeper.h"
#include "src/nn/autoencoder.h"
#include "src/nn/classifier.h"
#include "src/nn/gan.h"
#include "src/nn/serialize.h"
#include "src/nn/trainer.h"

namespace autodc {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

nn::Batch MakeData(size_t n, size_t d, Rng* rng) {
  nn::Batch x;
  for (size_t i = 0; i < n; ++i) {
    std::vector<float> row(d);
    for (size_t j = 0; j < d; ++j) {
      row[j] = static_cast<float>(rng->Uniform(-1, 1));
    }
    x.push_back(row);
  }
  return x;
}

// One scalar parameter with loss (w - 0)^2 — the smallest possible
// Trainer client, used to probe the runtime's control flow exactly.
struct Quadratic {
  nn::VarPtr w;
  explicit Quadratic(float w0) {
    nn::Tensor t({1, 1});
    t.at(0, 0) = w0;
    w = nn::Parameter(t);
  }
  nn::Trainer::BatchLossFn LossFn() const {
    nn::VarPtr p = w;
    return [p](const std::vector<size_t>&, bool) {
      return nn::MseLoss(p, nn::Tensor::Zeros({1, 1}));
    };
  }
};

TEST(TrainerTest, ZeroExamplesIsANoOp) {
  nn::TrainOptions options;
  options.epochs = 5;
  Quadratic q(1.0f);
  nn::Sgd opt({q.w}, 0.1f);
  Rng rng(1);
  nn::TrainResult r = nn::Trainer(options).Fit(0, &rng, &opt, q.LossFn());
  EXPECT_EQ(r.epochs_run, 0u);
  EXPECT_TRUE(r.history.empty());
  EXPECT_FLOAT_EQ(q.w->value[0], 1.0f);
}

TEST(TrainerTest, LinearLrScheduleAnnealsAndRestoresBaseRate) {
  nn::TrainOptions options;
  options.epochs = 3;
  options.lr_schedule = nn::LrSchedule::kLinear;
  options.lr_final_factor = 0.0f;
  Quadratic q(1.0f);
  nn::Sgd opt({q.w}, 1.0f);
  Rng rng(1);
  nn::TrainResult r = nn::Trainer(options).Fit(4, &rng, &opt, q.LossFn());
  ASSERT_EQ(r.history.size(), 3u);
  EXPECT_FLOAT_EQ(r.history[0].lr, 1.0f);
  EXPECT_FLOAT_EQ(r.history[1].lr, 0.5f);
  EXPECT_FLOAT_EQ(r.history[2].lr, 0.0f);
  // The optimizer is left reusable at its base rate.
  EXPECT_FLOAT_EQ(opt.learning_rate(), 1.0f);
}

TEST(TrainerTest, CosineLrSchedule) {
  nn::TrainOptions options;
  options.epochs = 3;
  options.lr_schedule = nn::LrSchedule::kCosine;
  options.lr_final_factor = 0.0f;
  Quadratic q(1.0f);
  nn::Sgd opt({q.w}, 1.0f);
  Rng rng(1);
  nn::TrainResult r = nn::Trainer(options).Fit(4, &rng, &opt, q.LossFn());
  ASSERT_EQ(r.history.size(), 3u);
  EXPECT_FLOAT_EQ(r.history[0].lr, 1.0f);   // cos(0) = 1
  EXPECT_FLOAT_EQ(r.history[1].lr, 0.5f);   // cos(pi/2) = 0
  EXPECT_NEAR(r.history[2].lr, 0.0f, 1e-7); // cos(pi) = -1
}

TEST(TrainerTest, EarlyStoppingOnFlatLoss) {
  nn::TrainOptions options;
  options.epochs = 10;
  options.early_stopping_patience = 2;
  Quadratic q(1.0f);
  nn::Sgd opt({q.w}, 0.0f);  // lr 0: the loss never improves
  Rng rng(1);
  nn::TrainResult r = nn::Trainer(options).Fit(4, &rng, &opt, q.LossFn());
  // Epoch 0 sets the best; epochs 1 and 2 exhaust the patience.
  EXPECT_TRUE(r.stopped_early);
  EXPECT_EQ(r.epochs_run, 3u);
  EXPECT_EQ(r.best_epoch, 0u);
  EXPECT_DOUBLE_EQ(r.best_loss, 1.0);
}

TEST(TrainerTest, EarlyStoppingRestoresBestWeights) {
  // lr 2 on a quadratic diverges: w -> -3w each step, so the first
  // epoch is the best and later weights explode.
  nn::TrainOptions options;
  options.epochs = 10;
  options.batch_size = 8;  // one batch per epoch over 4 examples
  options.early_stopping_patience = 2;
  Quadratic q(0.5f);
  nn::Sgd opt({q.w}, 2.0f);
  Rng rng(1);
  nn::TrainResult r = nn::Trainer(options).Fit(4, &rng, &opt, q.LossFn());
  EXPECT_TRUE(r.stopped_early);
  EXPECT_EQ(r.best_epoch, 0u);
  // Best weights = end of epoch 0: w = 0.5 - 2 * (2 * 0.5) = -1.5.
  EXPECT_FLOAT_EQ(q.w->value[0], -1.5f);
}

TEST(TrainerTest, MinDeltaCountsSmallImprovementsAsStalls) {
  nn::TrainOptions options;
  options.epochs = 50;
  options.batch_size = 8;
  options.early_stopping_patience = 3;
  options.early_stopping_min_delta = 0.02;
  Quadratic q(1.0f);
  nn::Sgd opt({q.w}, 0.01f);  // slow convergence: improvements shrink
  Rng rng(1);
  nn::TrainResult r = nn::Trainer(options).Fit(4, &rng, &opt, q.LossFn());
  // Once per-epoch improvement drops under min_delta, training stops
  // well before the epoch budget.
  EXPECT_TRUE(r.stopped_early);
  EXPECT_LT(r.epochs_run, 50u);
}

TEST(TrainerTest, ValidationSplitIsDisjointAndMonitored) {
  nn::TrainOptions options;
  options.epochs = 2;
  options.batch_size = 4;
  options.validation_fraction = 0.3;  // 3 of 10 examples
  std::set<size_t> train_seen, val_seen;
  Quadratic q(1.0f);
  nn::VarPtr w = q.w;
  auto loss_fn = [&](const std::vector<size_t>& idx, bool train) {
    for (size_t i : idx) (train ? train_seen : val_seen).insert(i);
    return nn::MseLoss(w, nn::Tensor::Zeros({1, 1}));
  };
  nn::Sgd opt({q.w}, 0.1f);
  Rng rng(3);
  nn::TrainResult r = nn::Trainer(options).Fit(10, &rng, &opt, loss_fn);
  EXPECT_EQ(train_seen.size(), 7u);
  EXPECT_EQ(val_seen.size(), 3u);
  for (size_t i : val_seen) EXPECT_EQ(train_seen.count(i), 0u);
  ASSERT_EQ(r.history.size(), 2u);
  for (const nn::EpochStats& s : r.history) {
    EXPECT_FALSE(std::isnan(s.val_loss));
  }
}

TEST(TrainerTest, ZeroValidationFractionSplitsNothingSilently) {
  nn::TrainOptions options;
  options.epochs = 2;
  options.validation_fraction = 0.0;
  Quadratic q(1.0f);
  nn::Sgd opt({q.w}, 0.1f);
  Rng rng(3);
  nn::TrainResult r = nn::Trainer(options).Fit(10, &rng, &opt, q.LossFn());
  EXPECT_TRUE(r.diagnostics.empty());
  for (const nn::EpochStats& s : r.history) {
    EXPECT_TRUE(std::isnan(s.val_loss));  // no validation pass ran
  }
}

TEST(TrainerTest, TinyFractionOnSmallDatasetClampsToOneExample) {
  // 3 * 0.05 rounds to 0 validation examples; the split must clamp to 1
  // (not silently disable validation) and say so.
  nn::TrainOptions options;
  options.epochs = 2;
  options.batch_size = 2;
  options.validation_fraction = 0.05;
  std::set<size_t> train_seen, val_seen;
  Quadratic q(1.0f);
  nn::VarPtr w = q.w;
  auto loss_fn = [&](const std::vector<size_t>& idx, bool train) {
    for (size_t i : idx) (train ? train_seen : val_seen).insert(i);
    return nn::MseLoss(w, nn::Tensor::Zeros({1, 1}));
  };
  nn::Sgd opt({q.w}, 0.1f);
  Rng rng(3);
  nn::TrainResult r = nn::Trainer(options).Fit(3, &rng, &opt, loss_fn);
  EXPECT_EQ(val_seen.size(), 1u);
  EXPECT_EQ(train_seen.size(), 2u);
  for (const nn::EpochStats& s : r.history) {
    EXPECT_FALSE(std::isnan(s.val_loss));
  }
  ASSERT_EQ(r.diagnostics.size(), 1u);
  EXPECT_NE(r.diagnostics[0].find("clamped to 1"), std::string::npos);
}

TEST(TrainerTest, HugeFractionLeavesAtLeastOneTrainingExample) {
  // 0.99 of a tiny dataset must not swallow every training example. On
  // n=3, floor(3 * 0.99) = 2 of 3 — legal, no diagnostic; on fraction
  // 1.0 the floor equals n and must clamp to n-1 with a diagnostic.
  nn::TrainOptions options;
  options.epochs = 1;
  options.batch_size = 1;
  options.validation_fraction = 0.99;
  std::set<size_t> train_seen;
  Quadratic q(1.0f);
  nn::VarPtr w = q.w;
  auto count_fn = [&](const std::vector<size_t>& idx, bool train) {
    if (train) {
      for (size_t i : idx) train_seen.insert(i);
    }
    return nn::MseLoss(w, nn::Tensor::Zeros({1, 1}));
  };
  nn::Sgd opt({q.w}, 0.1f);
  Rng rng(3);
  nn::TrainResult r = nn::Trainer(options).Fit(3, &rng, &opt, count_fn);
  EXPECT_GE(train_seen.size(), 1u);
  EXPECT_TRUE(r.diagnostics.empty());

  train_seen.clear();
  options.validation_fraction = 1.0;
  Rng rng2(3);
  nn::TrainResult r2 = nn::Trainer(options).Fit(3, &rng2, &opt, count_fn);
  EXPECT_EQ(train_seen.size(), 1u);
  ASSERT_EQ(r2.diagnostics.size(), 1u);
  EXPECT_NE(r2.diagnostics[0].find("no training examples"),
            std::string::npos);
}

TEST(TrainerTest, SingleExampleDisablesValidationWithDiagnostic) {
  nn::TrainOptions options;
  options.epochs = 1;
  options.validation_fraction = 0.5;
  Quadratic q(1.0f);
  nn::Sgd opt({q.w}, 0.1f);
  Rng rng(3);
  nn::TrainResult r = nn::Trainer(options).Fit(1, &rng, &opt, q.LossFn());
  EXPECT_EQ(r.epochs_run, 1u);
  ASSERT_EQ(r.diagnostics.size(), 1u);
  EXPECT_NE(r.diagnostics[0].find("validation disabled"),
            std::string::npos);
  ASSERT_EQ(r.history.size(), 1u);
  EXPECT_TRUE(std::isnan(r.history[0].val_loss));
}

TEST(TrainerTest, PeriodicCheckpointMatchesFinalWeights) {
  const std::string path = TempPath("trainer_ckpt.bin");
  nn::TrainOptions options;
  options.epochs = 4;
  options.batch_size = 8;
  options.checkpoint_every = 2;
  options.checkpoint_path = path;
  Quadratic q(1.0f);
  nn::Sgd opt({q.w}, 0.1f);
  Rng rng(1);
  nn::TrainResult r = nn::Trainer(options).Fit(4, &rng, &opt, q.LossFn());
  ASSERT_TRUE(r.checkpoint_status.ok());
  // The last checkpoint fires after the final epoch, so it holds the
  // final weights.
  Quadratic fresh(0.0f);
  ASSERT_TRUE(nn::LoadParametersFromFile({fresh.w}, path).ok());
  EXPECT_FLOAT_EQ(fresh.w->value[0], q.w->value[0]);
  std::remove(path.c_str());
}

TEST(TrainerTest, CheckpointFailureIsRecordedNotFatal) {
  nn::TrainOptions options;
  options.epochs = 2;
  options.checkpoint_every = 1;
  options.checkpoint_path = TempPath("no/such/dir/ckpt.bin");
  Quadratic q(1.0f);
  nn::Sgd opt({q.w}, 0.1f);
  Rng rng(1);
  nn::TrainResult r = nn::Trainer(options).Fit(4, &rng, &opt, q.LossFn());
  EXPECT_FALSE(r.checkpoint_status.ok());
  EXPECT_EQ(r.epochs_run, 2u);  // training ran to completion anyway
}

TEST(TrainerTest, EpochCallbackSeesEveryEpoch) {
  nn::TrainOptions options;
  options.epochs = 3;
  size_t calls = 0;
  options.epoch_callback = [&](const nn::EpochStats& s) {
    EXPECT_EQ(s.epoch, calls);
    EXPECT_GE(s.wall_ms, 0.0);
    ++calls;
  };
  Quadratic q(1.0f);
  nn::Sgd opt({q.w}, 0.1f);
  Rng rng(1);
  nn::Trainer(options).Fit(4, &rng, &opt, q.LossFn());
  EXPECT_EQ(calls, 3u);
}

TEST(TrainerTest, FitStepsMonitorsTrainLossForEarlyStopping) {
  nn::TrainOptions options;
  options.epochs = 10;
  options.batch_size = 8;
  options.early_stopping_patience = 1;
  Quadratic q(1.0f);
  Rng rng(1);
  nn::TrainResult r = nn::Trainer(options).FitSteps(
      4, &rng, {q.w},
      [](const std::vector<size_t>&) { return 1.0; });  // flat loss
  EXPECT_TRUE(r.stopped_early);
  EXPECT_EQ(r.epochs_run, 2u);
}

// ---- Checkpoint round-trips: train, save, load into a fresh model,
// and require identical predictions. One test per model family.

TEST(CheckpointRoundTripTest, BinaryClassifier) {
  const std::string path = TempPath("ckpt_binary.bin");
  Rng rng(31);
  nn::Batch x = MakeData(32, 4, &rng);
  std::vector<int> y;
  for (const auto& r : x) y.push_back(r[0] > 0 ? 1 : 0);
  nn::ClassifierConfig cfg;
  cfg.input_dim = 4;
  cfg.hidden = {6};
  nn::BinaryClassifier clf(cfg, &rng);
  clf.Train(x, y, 3, 16);
  ASSERT_TRUE(nn::SaveParametersToFile(clf.Parameters(), path).ok());

  Rng rng2(99);
  nn::BinaryClassifier fresh(cfg, &rng2);
  ASSERT_TRUE(nn::LoadParametersFromFile(fresh.Parameters(), path).ok());
  for (const auto& r : x) {
    EXPECT_DOUBLE_EQ(fresh.PredictProba(r), clf.PredictProba(r));
  }
  std::remove(path.c_str());
}

TEST(CheckpointRoundTripTest, MulticlassClassifier) {
  const std::string path = TempPath("ckpt_multi.bin");
  Rng rng(32);
  nn::Batch x = MakeData(32, 3, &rng);
  std::vector<size_t> y;
  for (const auto& r : x) y.push_back(r[0] > 0 ? 1 : 0);
  nn::MulticlassClassifier clf(3, {6}, 2, 0.05f, &rng);
  clf.Train(x, y, 3, 16);
  ASSERT_TRUE(nn::SaveParametersToFile(clf.Parameters(), path).ok());

  Rng rng2(99);
  nn::MulticlassClassifier fresh(3, {6}, 2, 0.05f, &rng2);
  ASSERT_TRUE(nn::LoadParametersFromFile(fresh.Parameters(), path).ok());
  for (const auto& r : x) {
    std::vector<double> a = clf.PredictProba(r);
    std::vector<double> b = fresh.PredictProba(r);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) EXPECT_DOUBLE_EQ(a[i], b[i]);
  }
  std::remove(path.c_str());
}

TEST(CheckpointRoundTripTest, Autoencoder) {
  const std::string path = TempPath("ckpt_ae.bin");
  Rng rng(33);
  nn::Batch data = MakeData(24, 5, &rng);
  nn::AutoencoderConfig cfg;
  cfg.input_dim = 5;
  cfg.hidden_dim = 3;
  nn::Autoencoder ae(nn::AutoencoderKind::kDenoising, cfg, &rng);
  ae.Train(data, 3, 8);
  ASSERT_TRUE(nn::SaveParametersToFile(ae.Parameters(), path).ok());

  Rng rng2(99);
  nn::Autoencoder fresh(nn::AutoencoderKind::kDenoising, cfg, &rng2);
  ASSERT_TRUE(nn::LoadParametersFromFile(fresh.Parameters(), path).ok());
  for (const auto& r : data) {
    EXPECT_DOUBLE_EQ(fresh.ReconstructionError(r),
                     ae.ReconstructionError(r));
  }
  std::remove(path.c_str());
}

TEST(CheckpointRoundTripTest, Gan) {
  const std::string path = TempPath("ckpt_gan.bin");
  Rng rng(34);
  nn::Batch real = MakeData(24, 2, &rng);
  nn::GanConfig cfg;
  cfg.latent_dim = 3;
  cfg.data_dim = 2;
  cfg.hidden_dim = 6;
  nn::Gan gan(cfg, &rng);
  gan.Train(real, 2, 8);
  std::vector<nn::VarPtr> params = gan.GeneratorParameters();
  for (const nn::VarPtr& p : gan.DiscriminatorParameters()) {
    params.push_back(p);
  }
  ASSERT_TRUE(nn::SaveParametersToFile(params, path).ok());

  Rng rng2(99);
  nn::Gan fresh(cfg, &rng2);
  std::vector<nn::VarPtr> fresh_params = fresh.GeneratorParameters();
  for (const nn::VarPtr& p : fresh.DiscriminatorParameters()) {
    fresh_params.push_back(p);
  }
  ASSERT_TRUE(nn::LoadParametersFromFile(fresh_params, path).ok());
  for (const auto& r : real) {
    EXPECT_DOUBLE_EQ(fresh.DiscriminatorScore(r), gan.DiscriminatorScore(r));
  }
  std::remove(path.c_str());
}

class DeepErRoundTrip : public ::testing::Test {
 protected:
  void SetUp() override {
    words_ = std::make_unique<embedding::EmbeddingStore>(6);
    Rng wr(8);
    for (const char* w : {"alpha", "beta", "gamma", "delta"}) {
      std::vector<float> v(6);
      for (auto& f : v) f = static_cast<float>(wr.Uniform(-0.5, 0.5));
      ASSERT_TRUE(words_->Add(w, v).ok());
    }
    left_ = std::make_unique<data::Table>(
        data::Schema::OfStrings({"name"}), "l");
    right_ = std::make_unique<data::Table>(
        data::Schema::OfStrings({"name"}), "r");
    ASSERT_TRUE(left_->AppendRow({data::Value("alpha beta")}).ok());
    ASSERT_TRUE(left_->AppendRow({data::Value("gamma delta")}).ok());
    ASSERT_TRUE(right_->AppendRow({data::Value("alpha beta")}).ok());
    ASSERT_TRUE(right_->AppendRow({data::Value("delta")}).ok());
    pairs_ = {{0, 0, 1}, {1, 1, 0}, {0, 1, 0}, {1, 0, 0}};
  }

  void RoundTrip(er::TupleComposition composition, const char* file) {
    const std::string path = TempPath(file);
    er::DeepErConfig cfg;
    cfg.composition = composition;
    cfg.lstm_hidden = 3;
    cfg.epochs = 3;
    cfg.seed = 12;
    er::DeepEr model(words_.get(), cfg);
    model.Train(*left_, *right_, pairs_);
    ASSERT_TRUE(model.SaveCheckpoint(path).ok());

    er::DeepEr fresh(words_.get(), cfg);
    fresh.InitForSchema(left_->schema());
    ASSERT_TRUE(fresh.LoadCheckpoint(path).ok());
    for (const er::PairLabel& p : pairs_) {
      EXPECT_DOUBLE_EQ(
          fresh.PredictProba(left_->row(p.left), right_->row(p.right)),
          model.PredictProba(left_->row(p.left), right_->row(p.right)));
    }
    std::remove(path.c_str());
  }

  std::unique_ptr<embedding::EmbeddingStore> words_;
  std::unique_ptr<data::Table> left_, right_;
  std::vector<er::PairLabel> pairs_;
};

TEST_F(DeepErRoundTrip, AverageComposition) {
  RoundTrip(er::TupleComposition::kAverage, "ckpt_deeper_avg.bin");
}

TEST_F(DeepErRoundTrip, LstmComposition) {
  RoundTrip(er::TupleComposition::kLstm, "ckpt_deeper_lstm.bin");
}

}  // namespace
}  // namespace autodc
