// Columnar data plane (DESIGN.md §12): chunk store semantics, the
// Table facade's view/copy-on-write behavior, the ADCT binary format
// round trip (mmap and bulk-read paths), and a property sweep pinning
// the columnar row views to a row-major oracle.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "src/common/parallel.h"
#include "src/common/rng.h"
#include "src/data/csv.h"
#include "src/data/table.h"
#include "src/data/table_file.h"

namespace autodc {
namespace {

using data::Row;
using data::Schema;
using data::Table;
using data::Value;
using data::ValueType;

Schema MixedSchema() {
  return Schema({{"id", ValueType::kInt},
                 {"price", ValueType::kDouble},
                 {"name", ValueType::kString},
                 {"qty", ValueType::kInt}});
}

/// Mixed-type table exercising every storage path: typed columns,
/// nulls, dictionary strings (unicode included), and overflow cells
/// (a string stored into the int column).
Table MixedTable(size_t rows) {
  Table t(MixedSchema(), "mixed");
  const char* names[] = {"alpha", "beta", "gämmä", "δelta", "beta"};
  for (size_t r = 0; r < rows; ++r) {
    Row row;
    row.push_back(Value(static_cast<int64_t>(r)));
    row.push_back(r % 7 == 0 ? Value::Null() : Value(0.5 * r));
    row.push_back(Value(std::string(names[r % 5])));
    // Every 11th qty holds a string -> overflow cell in an int column.
    if (r % 11 == 3) {
      row.push_back(Value("n/a"));
    } else if (r % 5 == 0) {
      row.push_back(Value::Null());
    } else {
      row.push_back(Value(static_cast<int64_t>(r % 10)));
    }
    EXPECT_TRUE(t.AppendRow(std::move(row)).ok());
  }
  return t;
}

void ExpectTablesEqual(const Table& a, const Table& b) {
  ASSERT_EQ(a.num_rows(), b.num_rows());
  ASSERT_EQ(a.num_columns(), b.num_columns());
  for (size_t r = 0; r < a.num_rows(); ++r) {
    for (size_t c = 0; c < a.num_columns(); ++c) {
      EXPECT_EQ(a.IsNull(r, c), b.IsNull(r, c)) << r << "," << c;
      EXPECT_TRUE(a.at(r, c) == b.at(r, c) &&
                  !(a.at(r, c) < b.at(r, c)) && !(b.at(r, c) < a.at(r, c)))
          << r << "," << c << ": " << a.at(r, c).ToString() << " vs "
          << b.at(r, c).ToString();
      EXPECT_EQ(a.CellText(r, c), b.CellText(r, c)) << r << "," << c;
    }
  }
}

// ---------- store + facade semantics -----------------------------------

TEST(ColumnarTest, TypedColumnsAreUniformAndScannable) {
  Table t = MixedTable(100);
  ASSERT_TRUE(t.ChunkScannable());
  EXPECT_TRUE(t.ColumnUniform(0));   // all ints
  EXPECT_TRUE(t.ColumnUniform(1));   // doubles + nulls
  EXPECT_TRUE(t.ColumnUniform(2));   // strings
  EXPECT_FALSE(t.ColumnUniform(3));  // overflow cells present
  EXPECT_EQ(t.storage_type(0), ValueType::kInt);
  EXPECT_EQ(t.storage_type(1), ValueType::kDouble);
  EXPECT_EQ(t.storage_type(2), ValueType::kString);
  // Dictionary holds the 4 distinct names.
  EXPECT_EQ(t.dict(2).size(), 4u);
}

TEST(ColumnarTest, ChunkScanMatchesCellReads) {
  Table t = MixedTable(300);
  size_t seen = 0;
  for (size_t k = 0; k < t.num_chunks(); ++k) {
    data::TypedChunkRef ch = t.column_chunk(0, k);
    for (size_t i = 0; i < ch.n; ++i) {
      ASSERT_FALSE(ch.is_null(i));
      EXPECT_EQ(ch.i64[i], t.at(ch.base + i, 0).AsInt());
      ++seen;
    }
  }
  EXPECT_EQ(seen, t.num_rows());
}

TEST(ColumnarTest, CopiesShareStoreUntilWritten) {
  Table t = MixedTable(50);
  Table copy = t;
  // Shared store: no data copied yet.
  EXPECT_EQ(&t.store(), &copy.store());
  copy.Set(7, 2, Value("rewritten"));
  // Copy-on-write: the copy got a private store, the original is intact.
  EXPECT_NE(&t.store(), &copy.store());
  EXPECT_EQ(t.at(7, 2).ToString(), "gämmä");
  EXPECT_EQ(copy.at(7, 2).ToString(), "rewritten");
}

TEST(ColumnarTest, FilterSharesStoreAndCompactRestoresScans) {
  Table t = MixedTable(120);
  Table even = t.Filter(
      [](const Row& row) { return row[0].AsInt() % 2 == 0; });
  EXPECT_EQ(even.num_rows(), 60u);
  EXPECT_EQ(&even.store(), &t.store());  // selection vector, no copy
  EXPECT_FALSE(even.ChunkScannable());
  for (size_t r = 0; r < even.num_rows(); ++r) {
    EXPECT_EQ(even.at(r, 0).AsInt(), static_cast<int64_t>(2 * r));
  }
  even.Compact();
  EXPECT_TRUE(even.ChunkScannable());
  EXPECT_NE(&even.store(), &t.store());
  for (size_t r = 0; r < even.num_rows(); ++r) {
    EXPECT_EQ(even.at(r, 0).AsInt(), static_cast<int64_t>(2 * r));
  }
}

TEST(ColumnarTest, ProjectAllowsDuplicateColumns) {
  Table t = MixedTable(20);
  auto res = t.Project({2, 0, 2});
  ASSERT_TRUE(res.ok());
  const Table& p = res.ValueOrDie();
  ASSERT_EQ(p.num_columns(), 3u);
  EXPECT_EQ(&p.store(), &t.store());  // remap, no copy
  for (size_t r = 0; r < p.num_rows(); ++r) {
    EXPECT_EQ(p.at(r, 0).ToString(), t.at(r, 2).ToString());
    EXPECT_EQ(p.at(r, 1).AsInt(), t.at(r, 0).AsInt());
    EXPECT_EQ(p.at(r, 2).ToString(), t.at(r, 2).ToString());
  }
}

TEST(ColumnarTest, ProjectOutOfRangeAndGetEdgeCases) {
  Table t = MixedTable(5);
  EXPECT_EQ(t.Project({0, 9}).status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(t.Get(0, "nope").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(t.Get(99, "id").status().code(), StatusCode::kOutOfRange);
  auto ok = t.Get(3, "name");
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.ValueOrDie().ToString(), "δelta");
}

TEST(ColumnarTest, NullFractionOnEmptyAndFilteredEmptyTables) {
  Table empty(MixedSchema());
  EXPECT_EQ(empty.NullFraction(), 0.0);
  EXPECT_EQ(empty.num_rows(), 0u);

  Table t = MixedTable(40);
  Table none = t.Filter([](const Row&) { return false; });
  EXPECT_EQ(none.num_rows(), 0u);  // empty selection != identity
  EXPECT_EQ(none.NullFraction(), 0.0);
}

TEST(ColumnarTest, NullFractionCountsOverflowAsNonNull) {
  Table t = MixedTable(100);
  size_t nulls = 0;
  for (size_t r = 0; r < t.num_rows(); ++r) {
    for (size_t c = 0; c < t.num_columns(); ++c) {
      if (t.IsNull(r, c)) ++nulls;
    }
  }
  double expect = static_cast<double>(nulls) /
                  static_cast<double>(t.num_rows() * t.num_columns());
  EXPECT_DOUBLE_EQ(t.NullFraction(), expect);
}

TEST(ColumnarTest, SmallChunksSpanChunkBoundaries) {
  ASSERT_EQ(setenv("AUTODC_TABLE_CHUNK_ROWS", "64", 1), 0);
  Table t = MixedTable(200);  // 4 chunks of 64 (last partial)
  unsetenv("AUTODC_TABLE_CHUNK_ROWS");
  EXPECT_EQ(t.chunk_rows(), 64u);
  EXPECT_EQ(t.num_chunks(), 4u);
  ExpectTablesEqual(t, MixedTable(200));
}

// ---------- binary table format ----------------------------------------

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(TableFileTest, RoundTripPreservesEveryCell) {
  Table t = MixedTable(500);
  std::string path = TempPath("columnar_roundtrip.adct");
  ASSERT_TRUE(data::WriteTableFile(t, path).ok());
  auto reopened = data::OpenTableFile(path);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  const Table& r = reopened.ValueOrDie();
  EXPECT_EQ(r.name(), "mixed");
  EXPECT_TRUE(r.ChunkScannable());
  EXPECT_FALSE(r.ColumnUniform(3));  // overflow cells survive
  ExpectTablesEqual(t, r);
}

TEST(TableFileTest, RoundTripUnderBulkReadFallback) {
  Table t = MixedTable(80);
  std::string path = TempPath("columnar_nommap.adct");
  ASSERT_TRUE(data::WriteTableFile(t, path).ok());
  ASSERT_EQ(setenv("AUTODC_TABLE_MMAP", "0", 1), 0);
  auto reopened = data::OpenTableFile(path);
  unsetenv("AUTODC_TABLE_MMAP");
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  ExpectTablesEqual(t, reopened.ValueOrDie());
}

TEST(TableFileTest, WriteAppliesSelectionAndProjection) {
  Table t = MixedTable(60);
  Table view = t.Filter(
      [](const Row& row) { return row[0].AsInt() < 10; });
  auto projected = view.Project({2, 0});
  ASSERT_TRUE(projected.ok());
  std::string path = TempPath("columnar_view.adct");
  ASSERT_TRUE(data::WriteTableFile(projected.ValueOrDie(), path).ok());
  auto reopened = data::OpenTableFile(path);
  ASSERT_TRUE(reopened.ok());
  const Table& r = reopened.ValueOrDie();
  ASSERT_EQ(r.num_rows(), 10u);
  ASSERT_EQ(r.num_columns(), 2u);
  for (size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(r.at(i, 0).ToString(), t.at(i, 2).ToString());
    EXPECT_EQ(r.at(i, 1).AsInt(), static_cast<int64_t>(i));
  }
}

TEST(TableFileTest, WritesAreByteReproducible) {
  Table t = MixedTable(150);
  std::string p1 = TempPath("columnar_repro1.adct");
  std::string p2 = TempPath("columnar_repro2.adct");
  ASSERT_TRUE(data::WriteTableFile(t, p1).ok());
  ASSERT_TRUE(data::WriteTableFile(t, p2).ok());
  std::ifstream f1(p1, std::ios::binary), f2(p2, std::ios::binary);
  std::string b1((std::istreambuf_iterator<char>(f1)),
                 std::istreambuf_iterator<char>());
  std::string b2((std::istreambuf_iterator<char>(f2)),
                 std::istreambuf_iterator<char>());
  ASSERT_FALSE(b1.empty());
  EXPECT_EQ(b1, b2);
}

TEST(TableFileTest, RejectsCorruptAndTruncatedFiles) {
  std::string path = TempPath("columnar_bad.adct");
  {
    std::ofstream f(path, std::ios::binary);
    f << "NOPE this is not a table file";
  }
  EXPECT_FALSE(data::OpenTableFile(path).ok());
  EXPECT_FALSE(data::OpenTableFile(TempPath("columnar_missing.adct")).ok());

  Table t = MixedTable(40);
  std::string good = TempPath("columnar_trunc_src.adct");
  ASSERT_TRUE(data::WriteTableFile(t, good).ok());
  std::ifstream in(good, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  std::string trunc_path = TempPath("columnar_trunc.adct");
  {
    std::ofstream f(trunc_path, std::ios::binary);
    f.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
  }
  EXPECT_FALSE(data::OpenTableFile(trunc_path).ok());
}

TEST(TableFileTest, CsvToBinaryToRowViewsIsExact) {
  std::string csv_path = TempPath("columnar_src.csv");
  {
    std::ofstream f(csv_path);
    f << "id,name,score\n";
    f << "1,\"comma, quote\"\" done\",0.5\n";
    f << "2,ünïcödé,\n";
    f << "3,,2.25\n";
  }
  auto from_csv = data::ReadCsvFile(csv_path);
  ASSERT_TRUE(from_csv.ok()) << from_csv.status().ToString();
  std::string bin_path = TempPath("columnar_src.adct");
  ASSERT_TRUE(data::WriteTableFile(from_csv.ValueOrDie(), bin_path).ok());
  auto reopened = data::OpenTableFile(bin_path);
  ASSERT_TRUE(reopened.ok());
  ExpectTablesEqual(from_csv.ValueOrDie(), reopened.ValueOrDie());
  const Table& r = reopened.ValueOrDie();
  EXPECT_EQ(r.at(0, 1).ToString(), "comma, quote\" done");
  EXPECT_EQ(r.at(1, 1).ToString(), "ünïcödé");
  EXPECT_TRUE(r.IsNull(1, 2));
  EXPECT_TRUE(r.IsNull(2, 1));
}

TEST(TableFileTest, ConcurrentReadersSeeConsistentData) {
  Table t = MixedTable(400);
  std::string path = TempPath("columnar_concurrent.adct");
  ASSERT_TRUE(data::WriteTableFile(t, path).ok());
  auto reopened = data::OpenTableFile(path);
  ASSERT_TRUE(reopened.ok());
  const Table& r = reopened.ValueOrDie();
  // Reads on a frozen store are lock-free and must be race-free: hammer
  // cells, text, and chunk scans from the pool (TSan leg's target).
  std::atomic<size_t> mismatches{0};
  ParallelFor(0, r.num_rows(), 16, [&](size_t lo, size_t hi) {
    for (size_t row = lo; row < hi; ++row) {
      for (size_t c = 0; c < r.num_columns(); ++c) {
        if (r.IsNull(row, c) != t.IsNull(row, c) ||
            r.CellText(row, c) != t.CellText(row, c)) {
          mismatches.fetch_add(1);
        }
      }
    }
  });
  EXPECT_EQ(mismatches.load(), 0u);
}

// ---------- property sweep: columnar views vs row-major oracle ---------

class ColumnarOracleProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ColumnarOracleProperty, RowViewsMatchMaterializedRows) {
  Rng rng(GetParam());
  // Small chunks so multi-chunk paths are exercised at tiny row counts.
  ASSERT_EQ(setenv("AUTODC_TABLE_CHUNK_ROWS", "64", 1), 0);
  size_t ncols = static_cast<size_t>(rng.UniformInt(1, 5));
  std::vector<data::Column> cols;
  for (size_t c = 0; c < ncols; ++c) {
    ValueType ty = static_cast<int>(rng.UniformInt(0, 2)) == 0
                       ? ValueType::kInt
                       : (rng.UniformInt(0, 1) != 0 ? ValueType::kDouble
                                                    : ValueType::kString);
    cols.push_back(data::Column{"c" + std::to_string(c), ty});
  }
  Table t{Schema(cols)};
  const char* strings[] = {"", "x", "ünïcödé", "with\nnewline", "dup", "dup"};
  std::vector<Row> oracle;
  size_t nrows = static_cast<size_t>(rng.UniformInt(0, 200));
  for (size_t r = 0; r < nrows; ++r) {
    Row row;
    for (size_t c = 0; c < ncols; ++c) {
      double dice = rng.Uniform();
      if (dice < 0.15) {
        row.push_back(Value::Null());
      } else if (dice < 0.25) {
        // Off-type cell: forces the overflow path for this column.
        row.push_back(Value(std::string(strings[rng.UniformInt(0, 5)])));
      } else if (cols[c].type == ValueType::kInt) {
        row.push_back(Value(static_cast<int64_t>(rng.UniformInt(-50, 50))));
      } else if (cols[c].type == ValueType::kDouble) {
        row.push_back(Value(rng.Normal()));
      } else {
        row.push_back(Value(std::string(strings[rng.UniformInt(0, 5)])));
      }
    }
    oracle.push_back(row);
    ASSERT_TRUE(t.AppendRow(std::move(row)).ok());
  }
  unsetenv("AUTODC_TABLE_CHUNK_ROWS");

  ASSERT_EQ(t.num_rows(), oracle.size());
  for (size_t r = 0; r < oracle.size(); ++r) {
    data::RowView view = t.row(r);
    Row materialized = view;  // via operator Row()
    ASSERT_EQ(materialized.size(), ncols);
    for (size_t c = 0; c < ncols; ++c) {
      const Value& want = oracle[r][c];
      EXPECT_EQ(view.is_null(c), want.is_null()) << r << "," << c;
      EXPECT_EQ(view.Text(c), want.ToString()) << r << "," << c;
      // Order-equivalence is the store's contract for value identity.
      EXPECT_TRUE(!(view[c] < want) && !(want < view[c]))
          << r << "," << c << ": " << view[c].ToString() << " vs "
          << want.ToString();
      EXPECT_TRUE(!(materialized[c] < want) && !(want < materialized[c]));
    }
  }

  // Round-trip the same random table through the binary format.
  if (!oracle.empty()) {
    std::string path =
        TempPath("columnar_prop_" + std::to_string(GetParam()) + ".adct");
    ASSERT_TRUE(data::WriteTableFile(t, path).ok());
    auto reopened = data::OpenTableFile(path);
    ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
    ExpectTablesEqual(t, reopened.ValueOrDie());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ColumnarOracleProperty,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u));

// ---------- streaming CSV ingest: chunk-boundary fuzz ------------------
//
// ReadCsvFile streams in chunks while ReadCsvString parses one buffer;
// the two must agree on every input regardless of where the chunk
// boundary falls. AUTODC_CSV_CHUNK_BYTES shrinks the I/O chunk so tiny
// fixtures put every tokenizer state transition on a read edge — chunk
// size 1 makes *each byte* its own chunk, the adversarial extreme.

/// Parses `text` as a file at the given streaming chunk size and
/// expects cell-exact agreement with the in-memory parse.
void ExpectStreamedParseMatches(const std::string& text, size_t chunk,
                                const std::string& tag) {
  SCOPED_TRACE(tag + " chunk=" + std::to_string(chunk));
  std::string path = TempPath("columnar_csv_fuzz.csv");
  {
    std::ofstream f(path, std::ios::binary);
    f << text;
  }
  ASSERT_EQ(setenv("AUTODC_CSV_CHUNK_BYTES", std::to_string(chunk).c_str(), 1),
            0);
  auto streamed = data::ReadCsvFile(path);
  ASSERT_EQ(unsetenv("AUTODC_CSV_CHUNK_BYTES"), 0);
  auto whole = data::ReadCsvString(text);
  ASSERT_EQ(streamed.ok(), whole.ok());
  if (!whole.ok()) return;
  ExpectTablesEqual(whole.ValueOrDie(), streamed.ValueOrDie());
  std::remove(path.c_str());
}

TEST(CsvStreamBoundaryTest, NastyInputsAgreeAtEveryChunkSize) {
  // The regression set: quoted field terminated by EOF with no trailing
  // newline, a lone \r as the very last byte (straddling the final
  // chunk at size 1), CRLF split across chunks, escaped quotes on
  // boundaries, empty trailing fields, and embedded newlines.
  const struct {
    const char* tag;
    const char* text;
  } kCases[] = {
      {"quoted-eof", "a,b\n1,\"qu\"\"oted,\nfield\""},
      {"lone-cr-at-eof", "a,b\r\n1,2\r"},
      {"cr-only-endings", "a,b\r1,2\r3,4\r"},
      {"crlf-splits", "a,b\r\n\"x\r\ny\",2\r\n"},
      {"escaped-quote-runs", "a\n\"\"\"\"\n\"\"\"x\"\"\"\n"},
      {"empty-trailing-field", "a,b\n1,\n2,"},
      {"empty-quoted-eof", "a,b\n1,\"\""},
      {"blank-lines", "a,b\n\n1,2\n\n"},
      {"delimiter-heavy", ",\n,,\n"},
  };
  for (const auto& c : kCases) {
    for (size_t chunk : {size_t{1}, size_t{2}, size_t{3}, size_t{7}}) {
      ExpectStreamedParseMatches(c.text, chunk, c.tag);
    }
  }
}

TEST(CsvStreamBoundaryTest, RandomizedQuoteCrlfSoupAgreesAtOneByteChunks) {
  // Property sweep: random strings over the adversarial alphabet,
  // streamed byte-at-a-time vs parsed whole. Seeded — failures
  // reproduce.
  const char kAlphabet[] = {'a', ',', '"', '\r', '\n'};
  Rng rng(99);
  for (int trial = 0; trial < 60; ++trial) {
    size_t len = static_cast<size_t>(rng.UniformInt(1, 24));
    std::string text = "h1,h2\n";
    for (size_t i = 0; i < len; ++i) {
      text.push_back(kAlphabet[static_cast<size_t>(rng.UniformInt(0, 4))]);
    }
    ExpectStreamedParseMatches(text, 1, "trial" + std::to_string(trial));
    ExpectStreamedParseMatches(text, 3, "trial" + std::to_string(trial));
  }
}

}  // namespace
}  // namespace autodc
