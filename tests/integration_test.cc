// Cross-module integration tests: CSV -> curation, DeepER checkpointing
// and transfer (Sec. 3.3 pre-trained models), schema mapping + union,
// and the error-inject -> detect -> repair -> impute loop.
#include <cstdio>

#include <gtest/gtest.h>

#include "src/cleaning/imputation.h"
#include "src/cleaning/outliers.h"
#include "src/cleaning/repair.h"
#include "src/core/autocurator.h"
#include "src/data/csv.h"
#include "src/datagen/er_benchmark.h"
#include "src/datagen/error_injector.h"
#include "src/discovery/schema_mapping.h"
#include "src/embedding/word2vec.h"
#include "src/er/blocking.h"
#include "src/er/deeper.h"
#include "src/er/evaluation.h"

namespace autodc {
namespace {

TEST(IntegrationTest, CsvRoundTripThroughCuration) {
  // Serialize a generated table to CSV, read it back, curate it.
  datagen::ErBenchmarkConfig cfg;
  cfg.domain = datagen::ErDomain::kProducts;
  cfg.num_entities = 40;
  cfg.dirtiness = 0.2;
  cfg.synonym_rate = 0.0;
  cfg.seed = 3;
  datagen::ErBenchmark bench = datagen::GenerateErBenchmark(cfg);
  data::Table catalog(bench.left.schema(), "catalog");
  for (size_t r = 0; r < bench.left.num_rows(); ++r) {
    ASSERT_TRUE(catalog.AppendRow(bench.left.row(r)).ok());
  }
  std::string csv = data::WriteCsvString(catalog);
  data::Table reread = data::ReadCsvString(csv).ValueOrDie();
  reread.set_name("catalog");
  ASSERT_EQ(reread.num_rows(), catalog.num_rows());

  core::AutoCuratorConfig ccfg;
  ccfg.task_query = "product brand price";
  ccfg.max_tables = 1;
  auto result = core::AutoCurator(ccfg).Curate({reread});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result.ValueOrDie().curated.num_rows(), 0u);
}

TEST(IntegrationTest, DeepErCheckpointRoundTrip) {
  datagen::ErBenchmarkConfig cfg;
  cfg.domain = datagen::ErDomain::kProducts;
  cfg.num_entities = 80;
  cfg.seed = 5;
  datagen::ErBenchmark bench = datagen::GenerateErBenchmark(cfg);
  embedding::Word2VecConfig wcfg;
  wcfg.sgns.dim = 16;
  wcfg.sgns.epochs = 4;
  embedding::EmbeddingStore words = embedding::TrainWordEmbeddingsFromTables(
      {&bench.left, &bench.right}, wcfg);
  Rng rng(7);
  auto train = er::SampleTrainingPairs(bench.left.num_rows(),
                                       bench.right.num_rows(), bench.matches,
                                       4, &rng);
  er::DeepErConfig dcfg;
  dcfg.epochs = 15;
  er::DeepEr model(&words, dcfg);
  model.FitWeights({&bench.left, &bench.right});
  model.Train(bench.left, bench.right, train);
  const std::string path = "/tmp/autodc_deeper_ckpt.bin";
  ASSERT_TRUE(model.SaveCheckpoint(path).ok());

  // Fresh model (different seed -> different init) restores exactly.
  er::DeepErConfig dcfg2 = dcfg;
  dcfg2.seed = 999;
  er::DeepEr restored(&words, dcfg2);
  restored.FitWeights({&bench.left, &bench.right});
  restored.InitForSchema(bench.left.schema());
  ASSERT_TRUE(restored.LoadCheckpoint(path).ok());
  for (const auto& [l, r] : bench.matches) {
    EXPECT_NEAR(model.PredictProba(bench.left.row(l), bench.right.row(r)),
                restored.PredictProba(bench.left.row(l), bench.right.row(r)),
                1e-6);
  }
  std::remove(path.c_str());
}

TEST(IntegrationTest, CheckpointBeforeInitFails) {
  embedding::EmbeddingStore words(8);
  ASSERT_TRUE(words.Add("x", std::vector<float>(8, 0.1f)).ok());
  er::DeepErConfig cfg;
  er::DeepEr model(&words, cfg);
  EXPECT_EQ(model.SaveCheckpoint("/tmp/never.bin").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(model.LoadCheckpoint("/tmp/never.bin").code(),
            StatusCode::kFailedPrecondition);
}

TEST(IntegrationTest, TransferLearningBeatsColdStartWithFewLabels) {
  // Sec. 3.3 / 6.2.5: pre-train a matcher on one (large) linkage task,
  // fine-tune on a second task with very few labels; compare against
  // training from scratch on the same few labels.
  embedding::Word2VecConfig wcfg;
  wcfg.sgns.dim = 20;
  wcfg.sgns.epochs = 5;
  wcfg.sgns.seed = 5;

  datagen::ErBenchmarkConfig big_cfg;
  big_cfg.domain = datagen::ErDomain::kProducts;
  big_cfg.num_entities = 200;
  big_cfg.dirtiness = 0.5;
  big_cfg.synonym_rate = 0.4;
  big_cfg.seed = 21;
  datagen::ErBenchmark big = datagen::GenerateErBenchmark(big_cfg);

  datagen::ErBenchmarkConfig small_cfg = big_cfg;
  small_cfg.num_entities = 120;
  small_cfg.seed = 99;  // different data, same domain
  datagen::ErBenchmark small = datagen::GenerateErBenchmark(small_cfg);

  // A shared embedding space (trained over both corpora — the enterprise
  // "holistic knowledge").
  embedding::EmbeddingStore words = embedding::TrainWordEmbeddingsFromTables(
      {&big.left, &big.right, &small.left, &small.right}, wcfg);

  // Pre-train on the big task.
  Rng rng(7);
  auto big_train = er::SampleTrainingPairs(
      big.left.num_rows(), big.right.num_rows(), big.matches, 5, &rng);
  er::DeepErConfig dcfg;
  dcfg.epochs = 30;
  dcfg.learning_rate = 1e-2f;
  er::DeepEr pretrained(&words, dcfg);
  pretrained.FitWeights({&big.left, &big.right});
  pretrained.Train(big.left, big.right, big_train);
  const std::string path = "/tmp/autodc_transfer_ckpt.bin";
  ASSERT_TRUE(pretrained.SaveCheckpoint(path).ok());

  // Tiny labeled set on the small task.
  std::vector<er::RowPair> few(small.matches.begin(),
                               small.matches.begin() + 5);
  Rng rng2(8);
  auto few_train = er::SampleTrainingPairs(
      small.left.num_rows(), small.right.num_rows(), few, 5, &rng2);
  std::vector<er::RowPair> all;
  for (size_t l = 0; l < small.left.num_rows(); ++l) {
    for (size_t r = 0; r < small.right.num_rows(); ++r) all.push_back({l, r});
  }

  // Cold start.
  er::DeepErConfig cold_cfg = dcfg;
  cold_cfg.epochs = 10;
  er::DeepEr cold(&words, cold_cfg);
  cold.FitWeights({&small.left, &small.right});
  cold.Train(small.left, small.right, few_train);
  er::PrfScore cold_score = er::Evaluate(
      cold.Match(small.left, small.right, all, 0.9), small.matches);

  // Warm start: load the pre-trained weights, fine-tune the same amount.
  er::DeepErConfig warm_cfg = cold_cfg;
  warm_cfg.seed = 77;
  er::DeepEr warm(&words, warm_cfg);
  warm.FitWeights({&small.left, &small.right});
  warm.InitForSchema(small.left.schema());
  ASSERT_TRUE(warm.LoadCheckpoint(path).ok());
  warm.Train(small.left, small.right, few_train);
  er::PrfScore warm_score = er::Evaluate(
      warm.Match(small.left, small.right, all, 0.9), small.matches);

  std::remove(path.c_str());
  EXPECT_GT(warm_score.f1, cold_score.f1)
      << "transfer (" << warm_score.f1 << ") should beat cold start ("
      << cold_score.f1 << ") with 5 labels";
}

TEST(IntegrationTest, SchemaMappingAndUnion) {
  // Two tables over shared value vocabularies but different column names
  // (customer vs client, product vs item); enough rows for embeddings.
  const char* people[] = {"alice johnson", "bob smith", "carol davis",
                          "dan miller"};
  const char* products[] = {"desk lamp", "usb hub", "monitor arm",
                            "webcam hd"};
  const char* regions[] = {"north", "south", "east", "west"};
  data::Table target(data::Schema::OfStrings({"customer", "product"}),
                     "orders");
  data::Table source(data::Schema::OfStrings({"item", "client", "region"}),
                     "crm");
  Rng rng(6);
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(target
                    .AppendRow({data::Value(people[rng.UniformInt(0, 3)]),
                                data::Value(products[rng.UniformInt(0, 3)])})
                    .ok());
    ASSERT_TRUE(source
                    .AppendRow({data::Value(products[rng.UniformInt(0, 3)]),
                                data::Value(people[rng.UniformInt(0, 3)]),
                                data::Value(regions[rng.UniformInt(0, 3)])})
                    .ok());
  }

  embedding::Word2VecConfig wcfg;
  wcfg.sgns.epochs = 8;
  embedding::EmbeddingStore words = embedding::TrainWordEmbeddingsFromTables(
      {&target, &source}, wcfg);
  discovery::SemanticColumnMatcher matcher(&words);
  discovery::SchemaMapping mapping =
      discovery::MapSchema(matcher, target, source, 0.2);
  ASSERT_EQ(mapping.mapping.size(), 2u);
  EXPECT_EQ(mapping.mapping[0], 1);  // customer <- client
  EXPECT_EQ(mapping.mapping[1], 0);  // product <- item
  EXPECT_EQ(mapping.num_mapped(), 2u);
  size_t before = target.num_rows();
  ASSERT_TRUE(discovery::UnionInto(&target, source, mapping).ok());
  ASSERT_EQ(target.num_rows(), before + source.num_rows());
  EXPECT_EQ(target.at(before, 0).ToString(), source.at(0, 1).ToString());
  EXPECT_EQ(target.at(before, 1).ToString(), source.at(0, 0).ToString());
}

TEST(IntegrationTest, UnionRejectsBadMapping) {
  data::Table target(data::Schema::OfStrings({"a"}));
  data::Table source(data::Schema::OfStrings({"b"}));
  discovery::SchemaMapping wrong;
  wrong.mapping = {0, 1};  // arity mismatch
  EXPECT_FALSE(discovery::UnionInto(&target, source, wrong).ok());
  discovery::SchemaMapping oob;
  oob.mapping = {7};
  EXPECT_FALSE(discovery::UnionInto(&target, source, oob).ok());
}

TEST(IntegrationTest, InjectDetectRepairImputeLoop) {
  // The full cleaning loop on one relation, asserting end-state quality.
  data::Table clean(data::Schema({{"city", data::ValueType::kString},
                                  {"zip", data::ValueType::kString},
                                  {"pop", data::ValueType::kDouble}}));
  const char* cities[] = {"springfield", "riverton", "fairview"};
  const char* zips[] = {"11111", "22222", "33333"};
  Rng rng(4);
  for (int i = 0; i < 250; ++i) {
    int k = static_cast<int>(rng.UniformInt(0, 2));
    ASSERT_TRUE(clean.AppendRow({data::Value(cities[k]), data::Value(zips[k]),
                                 data::Value(rng.Normal(50000, 3000))})
                    .ok());
  }
  std::vector<data::FunctionalDependency> fds = {{{0}, 1}};
  datagen::ErrorInjectionConfig ecfg;
  ecfg.typo_rate = 0.0;
  ecfg.null_rate = 0.05;
  ecfg.fd_violation_rate = 0.08;
  ecfg.outlier_rate = 0.03;
  auto injected = datagen::InjectErrors(clean, fds, ecfg);
  data::Table dirty = injected.dirty;

  // Outliers found.
  auto outliers = cleaning::ZScoreOutliers(dirty, 2);
  size_t true_outliers = 0;
  for (const datagen::InjectedError& e : injected.errors) {
    if (e.kind == datagen::ErrorKind::kOutlier) ++true_outliers;
  }
  EXPECT_GE(outliers.size(), true_outliers / 2);

  // Repair restores FD consistency.
  cleaning::RepairFdViolations(&dirty, fds);
  EXPECT_TRUE(data::FindAllViolations(dirty, fds).empty());

  // Imputation removes all nulls.
  cleaning::DaeImputerConfig icfg;
  icfg.epochs = 40;
  cleaning::DaeImputer dae(icfg);
  dae.FitAndFillAll(&dirty);
  cleaning::MeanModeImputer fallback;
  fallback.FitAndFillAll(&dirty);
  EXPECT_DOUBLE_EQ(dirty.NullFraction(), 0.0);

  // Most nulled categorical cells recovered exactly.
  size_t hit = 0, total = 0;
  for (const datagen::InjectedError& e : injected.errors) {
    if (e.kind != datagen::ErrorKind::kNull || e.col > 1) continue;
    ++total;
    if (dirty.at(e.row, e.col).ToString() == e.original.ToString()) ++hit;
  }
  ASSERT_GT(total, 0u);
  EXPECT_GT(static_cast<double>(hit) / total, 0.7);
}

}  // namespace
}  // namespace autodc
