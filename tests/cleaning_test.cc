// Tests for the cleaning stack: table encoding round trips, outlier
// detectors find injected outliers, imputers recover held-out values
// (DAE beating mean/mode on structured data — the MIDA claim), FD
// repair restores consistency, and golden-record fusion.
#include <gtest/gtest.h>

#include <cmath>

#include "src/cleaning/encoding.h"
#include "src/cleaning/imputation.h"
#include "src/cleaning/outliers.h"
#include "src/cleaning/repair.h"
#include "src/datagen/error_injector.h"

namespace autodc::cleaning {
namespace {

using data::Schema;
using data::Table;
using data::Value;

// City determines zip; salary correlates with level. Structure that a
// model-based imputer can exploit and a mean/mode imputer cannot.
Table StructuredTable(size_t n, uint64_t seed) {
  Table t(Schema({{"city", data::ValueType::kString},
                  {"zip", data::ValueType::kString},
                  {"level", data::ValueType::kInt},
                  {"salary", data::ValueType::kDouble}}));
  const char* cities[] = {"springfield", "riverton", "fairview"};
  const char* zips[] = {"11111", "22222", "33333"};
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    int k = static_cast<int>(rng.UniformInt(0, 2));
    int64_t level = rng.UniformInt(1, 5);
    double salary = 40000.0 + 10000.0 * static_cast<double>(level) +
                    rng.Normal(0, 1000);
    EXPECT_TRUE(t.AppendRow({Value(cities[k]), Value(zips[k]), Value(level),
                             Value(salary)})
                    .ok());
  }
  return t;
}

TEST(TableEncoderTest, DimsAndSpans) {
  Table t = StructuredTable(50, 1);
  TableEncoder enc;
  enc.Fit(t);
  // 3 cities + other, 3 zips + other, numeric, numeric.
  EXPECT_EQ(enc.dim(), 4u + 4u + 1u + 1u);
  EXPECT_FALSE(enc.IsNumeric(0));
  EXPECT_TRUE(enc.IsNumeric(2));
  auto [b, e] = enc.ColumnSpan(1);
  EXPECT_EQ(e - b, 4u);
}

TEST(TableEncoderTest, RoundTripDecoding) {
  Table t = StructuredTable(50, 2);
  TableEncoder enc;
  enc.Fit(t);
  for (size_t r = 0; r < 10; ++r) {
    std::vector<float> v = enc.EncodeRow(t.row(r));
    EXPECT_EQ(enc.DecodeColumn(v, 0).ToString(), t.at(r, 0).ToString());
    EXPECT_EQ(enc.DecodeColumn(v, 2).AsInt(), t.at(r, 2).AsInt());
    EXPECT_NEAR(enc.DecodeColumn(v, 3).AsDouble(), t.at(r, 3).AsDouble(),
                1.0);
  }
}

TEST(TableEncoderTest, NullsEncodeToZeros) {
  Table t(Schema({{"a", data::ValueType::kString},
                  {"b", data::ValueType::kDouble}}));
  ASSERT_TRUE(t.AppendRow({Value("x"), Value(5.0)}).ok());
  ASSERT_TRUE(t.AppendRow({Value::Null(), Value::Null()}).ok());
  TableEncoder enc;
  enc.Fit(t);
  std::vector<float> v = enc.EncodeRow(t.row(1));
  for (float x : v) EXPECT_FLOAT_EQ(x, 0.0f);
}

TEST(TableEncoderTest, RareCategoriesMapToOtherSlot) {
  Table t(Schema::OfStrings({"c"}));
  for (int i = 0; i < 30; ++i) ASSERT_TRUE(t.AppendRow({Value("common")}).ok());
  ASSERT_TRUE(t.AppendRow({Value("rare")}).ok());
  TableEncoder enc;
  TableEncoder::Options opt;
  opt.max_categories = 1;
  enc.Fit(t, opt);
  EXPECT_EQ(enc.dim(), 2u);  // one slot + other
  std::vector<float> v = enc.EncodeRow(data::Row{Value("rare")});
  EXPECT_FLOAT_EQ(v[1], 1.0f);
}

TEST(OutlierTest, ZScoreFindsInjectedOutlier) {
  Table t(Schema({{"v", data::ValueType::kDouble}}));
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(t.AppendRow({Value(rng.Normal(100, 5))}).ok());
  }
  ASSERT_TRUE(t.AppendRow({Value(500.0)}).ok());
  auto out = ZScoreOutliers(t, 0);
  ASSERT_FALSE(out.empty());
  bool found = false;
  for (const OutlierCell& o : out) {
    if (o.row == 200) found = true;
  }
  EXPECT_TRUE(found);
  EXPECT_LE(out.size(), 3u) << "too many false positives";
}

TEST(OutlierTest, IqrFindsInjectedOutlier) {
  Table t(Schema({{"v", data::ValueType::kDouble}}));
  Rng rng(4);
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(t.AppendRow({Value(rng.Uniform(0, 10))}).ok());
  }
  ASSERT_TRUE(t.AppendRow({Value(100.0)}).ok());
  auto out = IqrOutliers(t, 0);
  ASSERT_FALSE(out.empty());
  EXPECT_EQ(out.back().row, 200u);
}

TEST(OutlierTest, DetectorsIgnoreNonNumericAndSmallInputs) {
  Table t(Schema::OfStrings({"s"}));
  ASSERT_TRUE(t.AppendRow({Value("x")}).ok());
  EXPECT_TRUE(ZScoreOutliers(t, 0).empty());
  EXPECT_TRUE(IqrOutliers(t, 0).empty());
  EXPECT_TRUE(AutoencoderRowOutliers(t).empty());  // < 8 rows
}

TEST(OutlierTest, ZeroRowTablesYieldNoStatsAndNoNaN) {
  // The 0-row regression sweep (companion to Table::NullFraction's):
  // every per-column statistic must degrade to "nothing" on an empty
  // table or an empty Filter selection — never divide by the row count.
  Table empty(Schema({{"city", data::ValueType::kString},
                      {"salary", data::ValueType::kDouble}}));
  Table filtered_empty =
      StructuredTable(20, 3).Filter([](data::RowView) { return false; });
  ASSERT_EQ(filtered_empty.num_rows(), 0u);

  for (const Table* t : {&empty, &filtered_empty}) {
    EXPECT_TRUE(ZScoreOutliers(*t, 1).empty());
    EXPECT_TRUE(IqrOutliers(*t, 1).empty());
    EXPECT_TRUE(AutoencoderRowOutliers(*t).empty());

    TableEncoder enc;
    enc.Fit(*t);  // stats from zero observations: no NaN, no crash
    EXPECT_TRUE(enc.EncodeAll(*t).empty());

    Table copy = *t;
    MeanModeImputer mm;
    EXPECT_EQ(mm.FitAndFillAll(&copy), 0u);
    Table copy2 = *t;
    KnnImputer knn;
    EXPECT_EQ(knn.FitAndFillAll(&copy2), 0u);
  }

  // A fitted encoder's row encoding of a 0-row view's source stays
  // finite even when a column had no observed values at fit time.
  Table one_null(Schema({{"x", data::ValueType::kDouble}}));
  ASSERT_TRUE(one_null.AppendRow({Value::Null()}).ok());
  TableEncoder enc;
  enc.Fit(one_null);
  std::vector<float> encoded = enc.EncodeRow(one_null.row(0));
  for (float v : encoded) EXPECT_TRUE(std::isfinite(v));
}

TEST(OutlierTest, AutoencoderFlagsStructuralAnomaly) {
  // Rows obey city->zip; anomalous rows break the pairing — invisible to
  // per-column detectors, visible to reconstruction error.
  Table t = StructuredTable(200, 5);
  ASSERT_TRUE(t.AppendRow({Value("springfield"), Value("33333"),
                           Value(int64_t{3}), Value(70000.0)})
                  .ok());
  AutoencoderOutlierConfig cfg;
  cfg.sigma = 2.5;
  cfg.epochs = 50;
  auto out = AutoencoderRowOutliers(t, cfg);
  bool found = false;
  for (const OutlierCell& o : out) {
    if (o.row == 200) found = true;
  }
  EXPECT_TRUE(found) << "autoencoder missed the cross-column anomaly";
  EXPECT_LE(out.size(), 12u);
}

// Imputation quality harness: hide known cells, impute, score.
struct ImputationScore {
  double categorical_accuracy = 0.0;
  double numeric_mae = 0.0;
};

ImputationScore ScoreImputer(Imputer* imputer, size_t hidden_per_col,
                             uint64_t seed) {
  Table clean = StructuredTable(300, seed);
  Table dirty = clean;
  Rng rng(seed + 1);
  std::vector<std::pair<size_t, size_t>> hidden;
  for (size_t c = 0; c < clean.num_columns(); ++c) {
    for (size_t k = 0; k < hidden_per_col; ++k) {
      size_t r = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(clean.num_rows()) - 1));
      dirty.Set(r, c, Value::Null());
      hidden.emplace_back(r, c);
    }
  }
  imputer->Fit(dirty);
  ImputationScore score;
  size_t cat_total = 0, cat_hit = 0, num_total = 0;
  double mae = 0.0;
  for (const auto& [r, c] : hidden) {
    if (!dirty.at(r, c).is_null()) continue;  // duplicate pick
    Value v = imputer->Impute(dirty, r, c);
    if (c <= 1) {
      ++cat_total;
      if (v.ToString() == clean.at(r, c).ToString()) ++cat_hit;
    } else {
      bool ok = false;
      double x = v.ToNumeric(&ok);
      if (ok) {
        mae += std::fabs(x - clean.at(r, c).ToNumeric());
        ++num_total;
      }
    }
  }
  score.categorical_accuracy =
      cat_total > 0 ? static_cast<double>(cat_hit) / cat_total : 0.0;
  score.numeric_mae = num_total > 0 ? mae / num_total : 1e18;
  return score;
}

TEST(ImputationTest, MeanModeFillsEverything) {
  Table t = StructuredTable(100, 6);
  t.Set(0, 0, Value::Null());
  t.Set(1, 3, Value::Null());
  MeanModeImputer imputer;
  size_t filled = imputer.FitAndFillAll(&t);
  EXPECT_EQ(filled, 2u);
  EXPECT_DOUBLE_EQ(t.NullFraction(), 0.0);
}

TEST(ImputationTest, KnnRecoversCityFromZip) {
  KnnImputer knn(5);
  ImputationScore s = ScoreImputer(&knn, 15, 7);
  // zip fully determines city, so kNN should be near-perfect.
  EXPECT_GT(s.categorical_accuracy, 0.8);
}

TEST(ImputationTest, DaeBeatsMeanModeOnStructuredData) {
  DaeImputerConfig dcfg;
  dcfg.epochs = 80;
  DaeImputer dae(dcfg);
  MeanModeImputer mean;
  ImputationScore dae_score = ScoreImputer(&dae, 15, 8);
  ImputationScore mean_score = ScoreImputer(&mean, 15, 8);
  EXPECT_GT(dae_score.categorical_accuracy,
            mean_score.categorical_accuracy + 0.15)
      << "DAE " << dae_score.categorical_accuracy << " vs mean/mode "
      << mean_score.categorical_accuracy;
  EXPECT_LT(dae_score.numeric_mae, mean_score.numeric_mae)
      << "DAE should exploit level->salary structure";
}

TEST(ImputationTest, ImputersHandleAllNullColumn) {
  Table t(Schema({{"a", data::ValueType::kString},
                  {"b", data::ValueType::kString}}));
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(t.AppendRow({Value("x"), Value::Null()}).ok());
  }
  MeanModeImputer imputer;
  size_t filled = imputer.FitAndFillAll(&t);
  EXPECT_EQ(filled, 0u);  // nothing observable to learn from
}

TEST(RepairTest, MajorityVoteRestoresFd) {
  Table clean(Schema::OfStrings({"country", "capital"}));
  for (int i = 0; i < 120; ++i) {
    ASSERT_TRUE(clean
                    .AppendRow({Value(i % 3 == 0 ? "france"
                                      : i % 3 == 1 ? "italy"
                                                   : "spain"),
                                Value(i % 3 == 0 ? "paris"
                                      : i % 3 == 1 ? "rome"
                                                   : "madrid")})
                    .ok());
  }
  std::vector<data::FunctionalDependency> fds = {{{0}, 1}};
  datagen::ErrorInjectionConfig icfg;
  icfg.typo_rate = 0;
  icfg.null_rate = 0;
  icfg.outlier_rate = 0;
  icfg.fd_violation_rate = 0.15;
  auto injected = datagen::InjectErrors(clean, fds, icfg);
  ASSERT_FALSE(injected.errors.empty());
  ASSERT_FALSE(data::FindAllViolations(injected.dirty, fds).empty());

  auto repairs = RepairFdViolations(&injected.dirty, fds);
  EXPECT_FALSE(repairs.empty());
  EXPECT_TRUE(data::FindAllViolations(injected.dirty, fds).empty())
      << "table still violates the FD after repair";
  // Majority vote should restore the original values (errors are rare).
  size_t correct = 0;
  for (const datagen::InjectedError& e : injected.errors) {
    if (injected.dirty.at(e.row, e.col) == e.original) ++correct;
  }
  EXPECT_GT(static_cast<double>(correct) / injected.errors.size(), 0.9);
}

TEST(RepairTest, RepairIsIdempotent) {
  Table t(Schema::OfStrings({"a", "b"}));
  ASSERT_TRUE(t.AppendRow({Value("x"), Value("1")}).ok());
  ASSERT_TRUE(t.AppendRow({Value("x"), Value("1")}).ok());
  ASSERT_TRUE(t.AppendRow({Value("x"), Value("2")}).ok());
  std::vector<data::FunctionalDependency> fds = {{{0}, 1}};
  auto first = RepairFdViolations(&t, fds);
  EXPECT_EQ(first.size(), 1u);
  auto second = RepairFdViolations(&t, fds);
  EXPECT_TRUE(second.empty());
}

TEST(ConsolidationTest, MajorityAndLongestTieBreak) {
  Table t(Schema::OfStrings({"name", "phone"}));
  ASSERT_TRUE(t.AppendRow({Value("John Smith"), Value("555-1234")}).ok());
  ASSERT_TRUE(t.AppendRow({Value("J Smith"), Value("555-1234")}).ok());
  ASSERT_TRUE(t.AppendRow({Value("John Smith"), Value::Null()}).ok());
  data::Row golden = ConsolidateCluster(t, {0, 1, 2});
  EXPECT_EQ(golden[0].AsString(), "John Smith");  // majority
  EXPECT_EQ(golden[1].AsString(), "555-1234");    // nulls ignored

  // Pure tie: longer value wins ("John Smith" over "J Smith").
  data::Row tied = ConsolidateCluster(t, {0, 1});
  EXPECT_EQ(tied[0].AsString(), "John Smith");
}

TEST(ConsolidationTest, FuseClustersShrinksTable) {
  Table t(Schema::OfStrings({"name"}));
  ASSERT_TRUE(t.AppendRow({Value("a")}).ok());
  ASSERT_TRUE(t.AppendRow({Value("a")}).ok());
  ASSERT_TRUE(t.AppendRow({Value("b")}).ok());
  Table fused = FuseClusters(t, {{0, 1}, {2}});
  EXPECT_EQ(fused.num_rows(), 2u);
}

}  // namespace
}  // namespace autodc::cleaning
