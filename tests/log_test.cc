// Tests for the leveled logging layer: level parsing/threshold gating,
// the text and JSONL formatters (via the in-tree JSON parser), the test
// sink capture path, span-id correlation, the JSONL file sink, and the
// AUTODC_DISABLE_OBS dead-branch contract. Runs under the `obs` label.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "src/common/json_parse.h"
#include "src/obs/log.h"
#include "src/obs/trace.h"

namespace autodc::obs {
namespace {

// SetLogSinkForTest takes a plain function pointer, so captures go
// through file-level state.
std::vector<LogRecord>& Captured() {
  static auto* records = new std::vector<LogRecord>();
  return *records;
}

void CaptureSink(const LogRecord& record) { Captured().push_back(record); }

class LogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    saved_level_ = GetLogLevel();
    Captured().clear();
    SetLogSinkForTest(&CaptureSink);
  }
  void TearDown() override {
    SetLogSinkForTest(nullptr);
    SetLogFile("");
    SetLogLevel(saved_level_);
  }
  LogLevel saved_level_ = LogLevel::kWarn;
};

TEST_F(LogTest, ParseLogLevelAcceptsKnownSpellings) {
  LogLevel level = LogLevel::kOff;
  EXPECT_TRUE(ParseLogLevel("debug", &level));
  EXPECT_EQ(level, LogLevel::kDebug);
  EXPECT_TRUE(ParseLogLevel("INFO", &level));
  EXPECT_EQ(level, LogLevel::kInfo);
  EXPECT_TRUE(ParseLogLevel("Warning", &level));  // alias for warn
  EXPECT_EQ(level, LogLevel::kWarn);
  EXPECT_TRUE(ParseLogLevel("eRrOr", &level));
  EXPECT_EQ(level, LogLevel::kError);
  EXPECT_TRUE(ParseLogLevel("off", &level));
  EXPECT_EQ(level, LogLevel::kOff);
}

TEST_F(LogTest, ParseLogLevelRejectsJunkAndLeavesOutUntouched) {
  LogLevel level = LogLevel::kError;
  EXPECT_FALSE(ParseLogLevel("verbose", &level));
  EXPECT_FALSE(ParseLogLevel("", &level));
  EXPECT_EQ(level, LogLevel::kError);
}

TEST_F(LogTest, LevelNamesAreStable) {
  EXPECT_STREQ(LogLevelName(LogLevel::kDebug), "DEBUG");
  EXPECT_STREQ(LogLevelName(LogLevel::kWarn), "WARN");
  EXPECT_STREQ(LogLevelName(LogLevel::kOff), "OFF");
}

TEST_F(LogTest, FormatLogTextRendersEveryField) {
  LogRecord r;
  r.level = LogLevel::kWarn;
  r.file = "env.cc";
  r.line = 14;
  r.thread = 2;
  r.span_id = 17;
  r.wall_ms = 0;  // unix epoch: a fixed, timezone-free timestamp
  r.message = "checkpoint save failed";
  EXPECT_EQ(FormatLogText(r),
            "[1970-01-01T00:00:00.000Z W env.cc:14 t2 s17] "
            "checkpoint save failed");
}

TEST_F(LogTest, FormatLogJsonRoundTripsThroughParser) {
  LogRecord r;
  r.level = LogLevel::kError;
  r.file = "trainer.cc";
  r.line = 99;
  r.thread = 1;
  r.span_id = 5;
  r.wall_ms = 1722945600123;
  r.message = "bad \"quote\" and\nnewline";
  auto parsed = ParseJson(FormatLogJson(r));
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  const JsonValue& doc = parsed.ValueOrDie();
  EXPECT_EQ(doc.Find("ts_ms")->NumberOr(0), 1722945600123.0);
  EXPECT_EQ(doc.Find("level")->StringOr(""), "error");
  EXPECT_EQ(doc.Find("file")->StringOr(""), "trainer.cc");
  EXPECT_EQ(doc.Find("line")->NumberOr(0), 99.0);
  EXPECT_EQ(doc.Find("thread")->NumberOr(-1), 1.0);
  EXPECT_EQ(doc.Find("span")->NumberOr(0), 5.0);
  EXPECT_EQ(doc.Find("msg")->StringOr(""), "bad \"quote\" and\nnewline");
}

#ifndef AUTODC_DISABLE_OBS

TEST_F(LogTest, MacroRespectsThreshold) {
  SetLogLevel(LogLevel::kWarn);
  AUTODC_LOG(DEBUG) << "below threshold";
  AUTODC_LOG(INFO) << "also below";
  AUTODC_LOG(WARN) << "at threshold";
  AUTODC_LOG(ERROR) << "above";
  ASSERT_EQ(Captured().size(), 2u);
  EXPECT_EQ(Captured()[0].level, LogLevel::kWarn);
  EXPECT_EQ(Captured()[0].message, "at threshold");
  EXPECT_EQ(Captured()[1].level, LogLevel::kError);
}

TEST_F(LogTest, OffSilencesEverything) {
  SetLogLevel(LogLevel::kOff);
  AUTODC_LOG(ERROR) << "never";
  EXPECT_TRUE(Captured().empty());
}

TEST_F(LogTest, SuppressedStatementsSkipArgumentEvaluation) {
  SetLogLevel(LogLevel::kError);
  int evaluations = 0;
  auto count = [&evaluations] {
    ++evaluations;
    return "x";
  };
  AUTODC_LOG(DEBUG) << count();
  EXPECT_EQ(evaluations, 0);
  AUTODC_LOG(ERROR) << count();
  EXPECT_EQ(evaluations, 1);
}

TEST_F(LogTest, RecordsCarrySourceLocationAndStreamedValues) {
  SetLogLevel(LogLevel::kInfo);
  AUTODC_LOG(INFO) << "answer=" << 42 << " pi=" << 3.5;
  ASSERT_EQ(Captured().size(), 1u);
  const LogRecord& r = Captured()[0];
  EXPECT_EQ(r.file, "log_test.cc");  // basename, not the full path
  EXPECT_GT(r.line, 0);
  EXPECT_GT(r.wall_ms, 0);
  EXPECT_EQ(r.message, "answer=42 pi=3.5");
}

TEST_F(LogTest, RecordsCorrelateWithTheEnclosingSpan) {
  SetLogLevel(LogLevel::kInfo);
  AUTODC_LOG(INFO) << "outside any span";
  uint64_t live_id = 0;
  {
    Span span("traced region");
    live_id = CurrentSpanId();
    AUTODC_LOG(INFO) << "inside";
  }
  ASSERT_EQ(Captured().size(), 2u);
  EXPECT_EQ(Captured()[0].span_id, 0u);
  ASSERT_NE(live_id, 0u);
  EXPECT_EQ(Captured()[1].span_id, live_id);
  ClearSpans();
}

TEST_F(LogTest, FileSinkAppendsOneJsonObjectPerRecord) {
  // The file sink only runs when no test sink is installed.
  SetLogSinkForTest(nullptr);
  std::string path = ::testing::TempDir() + "/log_test_sink.jsonl";
  std::remove(path.c_str());
  ASSERT_TRUE(SetLogFile(path));
  SetLogLevel(LogLevel::kError);  // ERROR only: keeps stderr quiet too
  AUTODC_LOG(ERROR) << "first";
  AUTODC_LOG(ERROR) << "second";
  SetLogFile("");
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::vector<std::string> messages;
  std::string line;
  while (std::getline(in, line)) {
    auto parsed = ParseJson(line);
    ASSERT_TRUE(parsed.ok()) << parsed.status().message();
    messages.push_back(parsed.ValueOrDie().Find("msg")->StringOr(""));
  }
  ASSERT_EQ(messages.size(), 2u);
  EXPECT_EQ(messages[0], "first");
  EXPECT_EQ(messages[1], "second");
  std::remove(path.c_str());
}

#else  // AUTODC_DISABLE_OBS

TEST_F(LogTest, DisabledMacroNeverEvaluatesArguments) {
  SetLogLevel(LogLevel::kDebug);
  int evaluations = 0;
  auto count = [&evaluations] {
    ++evaluations;
    return "x";
  };
  AUTODC_LOG(ERROR) << count();
  EXPECT_EQ(evaluations, 0);
  EXPECT_TRUE(Captured().empty());
}

#endif  // AUTODC_DISABLE_OBS

TEST_F(LogTest, SetLogFileRejectsUnopenablePath) {
  EXPECT_FALSE(SetLogFile("/nonexistent-dir/log.jsonl"));
}

}  // namespace
}  // namespace autodc::obs
