// Tests for the bench regression checker (bench/check.h): metric
// direction inference, tolerance resolution, CompareDocs pass/fail
// classification, and the CheckDirs file driver's error paths
// (missing results file, malformed JSON, empty baseline dir).
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "bench/check.h"
#include "src/common/json_parse.h"

namespace autodc::bench {
namespace {

namespace fs = std::filesystem;

JsonValue Parse(const std::string& text) {
  auto parsed = ParseJson(text);
  EXPECT_TRUE(parsed.ok()) << parsed.status().message();
  return parsed.ok() ? std::move(parsed).ValueOrDie() : JsonValue{};
}

TEST(DirectionForMetricTest, ClassifiesBySuffixAndStem) {
  EXPECT_EQ(DirectionForMetric("scalar_ns"), MetricDirection::kLowerIsBetter);
  EXPECT_EQ(DirectionForMetric("wall_ms"), MetricDirection::kLowerIsBetter);
  EXPECT_EQ(DirectionForMetric("final_train_loss"),
            MetricDirection::kLowerIsBetter);
  EXPECT_EQ(DirectionForMetric("overhead_pct"),
            MetricDirection::kLowerIsBetter);
  EXPECT_EQ(DirectionForMetric("entity_count_err"),
            MetricDirection::kLowerIsBetter);
  EXPECT_EQ(DirectionForMetric("speedup"), MetricDirection::kHigherIsBetter);
  EXPECT_EQ(DirectionForMetric("simd_gflops"),
            MetricDirection::kHigherIsBetter);
  EXPECT_EQ(DirectionForMetric("weighted_f1"),
            MetricDirection::kHigherIsBetter);
  EXPECT_EQ(DirectionForMetric("hit_rate"), MetricDirection::kHigherIsBetter);
  // Position-independent stems: "throughput" / "hit_rate" anywhere in
  // the name gate as higher-is-better, not just as a suffix.
  EXPECT_EQ(DirectionForMetric("throughput_int8_mvps"),
            MetricDirection::kHigherIsBetter);
  EXPECT_EQ(DirectionForMetric("scan_throughput"),
            MetricDirection::kHigherIsBetter);
  EXPECT_EQ(DirectionForMetric("hit_rate_top5"),
            MetricDirection::kHigherIsBetter);
  EXPECT_EQ(DirectionForMetric("cache_hit_rate_pct"),
            MetricDirection::kLowerIsBetter);  // suffix checks still win
  // Admission-control rejects gate as lower-is-better wherever the
  // stem appears (the serve bench's "reject_rate").
  EXPECT_EQ(DirectionForMetric("reject_rate"),
            MetricDirection::kLowerIsBetter);
  EXPECT_EQ(DirectionForMetric("rejected_total"),
            MetricDirection::kLowerIsBetter);
  EXPECT_EQ(DirectionForMetric("candidates"), MetricDirection::kTwoSided);
  EXPECT_EQ(DirectionForMetric("separation"), MetricDirection::kTwoSided);
}

// A two-row baseline used across the CompareDocs tests.
const char kBaseline[] = R"({
  "bench": "demo",
  "results": [
    {"name": "hot_loop", "metrics": {"time_ms": 100.0, "speedup": 4.0}},
    {"name": "quality", "metrics": {"f1": 0.8, "unmeasured": null}}
  ],
  "tolerances": {"hot_loop.time_ms": 0.5, "f1": 0.05, "default": 0.2}
})";

CheckReport RunCheck(const std::string& results_json,
                CheckOptions options = CheckOptions{}) {
  JsonValue baseline = Parse(kBaseline);
  JsonValue results = Parse(results_json);
  CheckReport report;
  CompareDocs("demo", baseline, results, options, &report);
  return report;
}

TEST(CompareDocsTest, IdenticalResultsPass) {
  CheckReport report = RunCheck(kBaseline);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.failures(), 0u);
  EXPECT_TRUE(report.errors.empty());
  // 3 compared metrics + 1 skipped null row.
  EXPECT_EQ(report.rows.size(), 4u);
}

TEST(CompareDocsTest, WithinToleranceDriftPasses) {
  // time_ms +40% is inside its per-metric 0.5 band; f1 -4% inside 0.05.
  CheckReport report = RunCheck(R"({"results": [
    {"name": "hot_loop", "metrics": {"time_ms": 140.0, "speedup": 4.0}},
    {"name": "quality", "metrics": {"f1": 0.77}}
  ]})");
  EXPECT_TRUE(report.ok()) << FormatCheckReport(report, true);
}

TEST(CompareDocsTest, RegressionBeyondToleranceFails) {
  // time_ms +60% breaches 0.5; f1 -25% breaches 0.05; speedup -75%
  // breaches the file default 0.2.
  CheckReport report = RunCheck(R"({"results": [
    {"name": "hot_loop", "metrics": {"time_ms": 160.0, "speedup": 1.0}},
    {"name": "quality", "metrics": {"f1": 0.6}}
  ]})");
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.failures(), 3u);
}

TEST(CompareDocsTest, ImprovementsNeverFailDirectionalMetrics) {
  // Faster time, higher speedup, higher f1: all moves in the good
  // direction, however large.
  CheckReport report = RunCheck(R"({"results": [
    {"name": "hot_loop", "metrics": {"time_ms": 10.0, "speedup": 40.0}},
    {"name": "quality", "metrics": {"f1": 0.99}}
  ]})");
  EXPECT_TRUE(report.ok()) << FormatCheckReport(report, true);
}

TEST(CompareDocsTest, MissingResultRowFails) {
  CheckReport report = RunCheck(R"({"results": [
    {"name": "hot_loop", "metrics": {"time_ms": 100.0, "speedup": 4.0}}
  ]})");
  EXPECT_FALSE(report.ok());
  bool found = false;
  for (const MetricCheckRow& row : report.rows) {
    if (row.result == "quality" && !row.ok) {
      EXPECT_EQ(row.note, "result row missing from current run");
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(CompareDocsTest, MissingMetricFails) {
  CheckReport report = RunCheck(R"({"results": [
    {"name": "hot_loop", "metrics": {"time_ms": 100.0}},
    {"name": "quality", "metrics": {"f1": 0.8}}
  ]})");
  EXPECT_FALSE(report.ok());
  ASSERT_EQ(report.failures(), 1u);
  for (const MetricCheckRow& row : report.rows) {
    if (!row.ok) {
      EXPECT_EQ(row.metric, "speedup");
      EXPECT_EQ(row.note, "metric missing from current run");
    }
  }
}

TEST(CompareDocsTest, MetricTurnedNullFails) {
  // The results writer maps NaN/Inf to null; that must read as a
  // regression, not a silent skip.
  CheckReport report = RunCheck(R"({"results": [
    {"name": "hot_loop", "metrics": {"time_ms": 100.0, "speedup": null}},
    {"name": "quality", "metrics": {"f1": 0.8}}
  ]})");
  EXPECT_FALSE(report.ok());
  ASSERT_EQ(report.failures(), 1u);
  for (const MetricCheckRow& row : report.rows) {
    if (!row.ok) {
      EXPECT_EQ(row.note, "metric became null (NaN/Inf)");
    }
  }
}

TEST(CompareDocsTest, NullBaselineMetricIsSkippedNotCompared) {
  CheckReport report = RunCheck(kBaseline);
  bool skipped = false;
  for (const MetricCheckRow& row : report.rows) {
    if (row.metric == "unmeasured") {
      EXPECT_TRUE(row.ok);
      EXPECT_EQ(row.note, "skipped: baseline value is null");
      skipped = true;
    }
  }
  EXPECT_TRUE(skipped);
}

TEST(CompareDocsTest, CliToleranceOverridesFileDefaultOnly) {
  // With --tolerance 0.9 (an override): the per-metric bands still
  // apply, but the file's "default" 0.2 no longer governs speedup.
  CheckOptions options;
  options.default_tolerance = 0.9;
  options.tolerance_is_override = true;
  CheckReport report = RunCheck(R"({"results": [
    {"name": "hot_loop", "metrics": {"time_ms": 100.0, "speedup": 1.0}},
    {"name": "quality", "metrics": {"f1": 0.6}}
  ]})",
                           options);
  // speedup -75% now passes (0.9 band); f1 -25% still fails its
  // per-metric 0.05 band.
  EXPECT_EQ(report.failures(), 1u);
  for (const MetricCheckRow& row : report.rows) {
    if (!row.ok) {
      EXPECT_EQ(row.metric, "f1");
    }
  }
}

TEST(CompareDocsTest, BaselineWithoutResultsArrayIsAnError) {
  JsonValue baseline = Parse(R"({"bench": "demo"})");
  JsonValue results = Parse(R"({"results": []})");
  CheckReport report;
  CompareDocs("demo", baseline, results, CheckOptions{}, &report);
  EXPECT_FALSE(report.ok());
  ASSERT_EQ(report.errors.size(), 1u);
  EXPECT_NE(report.errors[0].find("no results[] array"), std::string::npos);
}

class CheckDirsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::path(::testing::TempDir()) /
            ("bench_check_test_" +
             std::to_string(::testing::UnitTest::GetInstance()->random_seed()));
    fs::remove_all(root_);
    base_dir_ = (root_ / "baselines").string();
    results_dir_ = (root_ / "results").string();
    fs::create_directories(base_dir_);
    fs::create_directories(results_dir_);
  }
  void TearDown() override { fs::remove_all(root_); }

  void WriteFile(const std::string& dir, const std::string& name,
                 const std::string& text) {
    std::ofstream out(fs::path(dir) / name);
    out << text;
  }

  fs::path root_;
  std::string base_dir_;
  std::string results_dir_;
};

const char kSimpleDoc[] =
    R"({"results": [{"name": "r", "metrics": {"x_ms": 10.0}}]})";

TEST_F(CheckDirsTest, MatchingDirsPass) {
  WriteFile(base_dir_, "BENCH_demo.json", kSimpleDoc);
  WriteFile(results_dir_, "BENCH_demo.json", kSimpleDoc);
  CheckReport report = CheckDirs(base_dir_, results_dir_, CheckOptions{});
  EXPECT_TRUE(report.ok()) << FormatCheckReport(report, true);
  EXPECT_EQ(report.rows.size(), 1u);
}

TEST_F(CheckDirsTest, MissingResultsFileIsAnError) {
  WriteFile(base_dir_, "BENCH_demo.json", kSimpleDoc);
  CheckReport report = CheckDirs(base_dir_, results_dir_, CheckOptions{});
  EXPECT_FALSE(report.ok());
  ASSERT_EQ(report.errors.size(), 1u);
  EXPECT_NE(report.errors[0].find("no results file"), std::string::npos);
}

TEST_F(CheckDirsTest, MalformedJsonIsAnErrorNamingTheFile) {
  WriteFile(base_dir_, "BENCH_demo.json", kSimpleDoc);
  WriteFile(results_dir_, "BENCH_demo.json", "{\"results\": [trunc");
  CheckReport report = CheckDirs(base_dir_, results_dir_, CheckOptions{});
  EXPECT_FALSE(report.ok());
  ASSERT_EQ(report.errors.size(), 1u);
  EXPECT_NE(report.errors[0].find("BENCH_demo.json"), std::string::npos);
}

TEST_F(CheckDirsTest, EmptyBaselineDirIsAnError) {
  CheckReport report = CheckDirs(base_dir_, results_dir_, CheckOptions{});
  EXPECT_FALSE(report.ok());
  ASSERT_EQ(report.errors.size(), 1u);
  EXPECT_NE(report.errors[0].find("no BENCH_*.json baselines"),
            std::string::npos);
}

TEST_F(CheckDirsTest, NonBaselineFilesAreIgnored) {
  WriteFile(base_dir_, "BENCH_demo.json", kSimpleDoc);
  WriteFile(base_dir_, "notes.json", "not even json");
  WriteFile(base_dir_, "README.md", "prose");
  WriteFile(results_dir_, "BENCH_demo.json", kSimpleDoc);
  CheckReport report = CheckDirs(base_dir_, results_dir_, CheckOptions{});
  EXPECT_TRUE(report.ok()) << FormatCheckReport(report, true);
}

TEST(FormatCheckReportTest, SummaryLineNamesTheVerdict) {
  CheckReport report;
  MetricCheckRow row;
  row.label = "demo";
  row.result = "r";
  row.metric = "x_ms";
  row.ok = false;
  row.note = "regressed +50% (tol 35%)";
  report.rows.push_back(row);
  std::string text = FormatCheckReport(report, false);
  EXPECT_NE(text.find("FAIL"), std::string::npos);
  EXPECT_NE(text.find("1 regressed"), std::string::npos);
  report.rows[0].ok = true;
  report.rows[0].note.clear();
  text = FormatCheckReport(report, false);
  EXPECT_NE(text.find("PASS"), std::string::npos);
}

}  // namespace
}  // namespace autodc::bench
