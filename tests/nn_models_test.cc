// Tests for the model-level nn components: autoencoder family, GAN,
// classifiers, embedding table, and checkpoint serialization.
#include <cstdio>
#include <sstream>

#include <gtest/gtest.h>

#include "src/nn/autoencoder.h"
#include "src/nn/classifier.h"
#include "src/nn/gan.h"
#include "src/nn/serialize.h"

namespace autodc::nn {
namespace {

// Synthetic data living near a 2-D plane inside 6-D space, so a width-2
// bottleneck can reconstruct it well.
Batch PlanarData(size_t n, Rng* rng) {
  Batch data;
  for (size_t i = 0; i < n; ++i) {
    float u = static_cast<float>(rng->Uniform(-1, 1));
    float v = static_cast<float>(rng->Uniform(-1, 1));
    data.push_back({u, v, u + v, u - v, 0.5f * u, 0.5f * v});
  }
  return data;
}

TEST(AutoencoderTest, PlainLearnsCompression) {
  Rng rng(1);
  AutoencoderConfig cfg;
  cfg.input_dim = 6;
  cfg.hidden_dim = 3;
  cfg.activation = Activation::kTanh;
  cfg.learning_rate = 0.01f;
  Autoencoder ae(AutoencoderKind::kPlain, cfg, &rng);
  Batch data = PlanarData(200, &rng);
  double first = ae.TrainEpoch(data);
  double last = ae.Train(data, 40);
  EXPECT_LT(last, first * 0.5) << "loss did not decrease";
  EXPECT_EQ(ae.Encode(data[0]).size(), 3u);
  EXPECT_EQ(ae.Reconstruct(data[0]).size(), 6u);
}

TEST(AutoencoderTest, SparsePenaltyShrinksCodes) {
  Rng rng(2);
  AutoencoderConfig cfg;
  cfg.input_dim = 6;
  cfg.hidden_dim = 8;
  cfg.sparsity_weight = 0.0f;
  Autoencoder dense_ae(AutoencoderKind::kSparse, cfg, &rng);
  Rng rng2(2);
  cfg.sparsity_weight = 0.05f;
  Autoencoder sparse_ae(AutoencoderKind::kSparse, cfg, &rng2);
  Batch data = PlanarData(150, &rng);
  dense_ae.Train(data, 30);
  sparse_ae.Train(data, 30);
  auto l1 = [](const std::vector<float>& v) {
    double s = 0.0;
    for (float x : v) s += std::fabs(x);
    return s;
  };
  double dense_l1 = 0.0, sparse_l1 = 0.0;
  for (size_t i = 0; i < 20; ++i) {
    dense_l1 += l1(dense_ae.Encode(data[i]));
    sparse_l1 += l1(sparse_ae.Encode(data[i]));
  }
  EXPECT_LT(sparse_l1, dense_l1);
}

TEST(AutoencoderTest, DenoisingReconstructsCorruptedInput) {
  Rng rng(3);
  AutoencoderConfig cfg;
  cfg.input_dim = 6;
  cfg.hidden_dim = 4;
  cfg.corruption = 0.3f;
  cfg.learning_rate = 0.01f;
  Autoencoder dae(AutoencoderKind::kDenoising, cfg, &rng);
  Batch data = PlanarData(300, &rng);
  dae.Train(data, 60);
  // Zero one coordinate and check the DAE restores it approximately.
  double err = 0.0;
  for (size_t i = 0; i < 30; ++i) {
    std::vector<float> corrupted = data[i];
    corrupted[2] = 0.0f;  // x2 = u+v, recoverable from the others
    std::vector<float> restored = dae.Reconstruct(corrupted);
    err += std::fabs(restored[2] - data[i][2]);
  }
  err /= 30.0;
  EXPECT_LT(err, 0.35) << "denoising AE failed to restore corrupted cell";
}

TEST(AutoencoderTest, VariationalTrainsAndEncodes) {
  Rng rng(4);
  AutoencoderConfig cfg;
  cfg.input_dim = 6;
  cfg.hidden_dim = 3;
  cfg.kl_weight = 0.05f;
  cfg.learning_rate = 0.01f;
  Autoencoder vae(AutoencoderKind::kVariational, cfg, &rng);
  Batch data = PlanarData(150, &rng);
  double first = vae.TrainEpoch(data);
  double last = vae.Train(data, 40);
  EXPECT_LT(last, first);
  EXPECT_EQ(vae.Encode(data[0]).size(), 3u);
  // VAE latent is deterministic at inference (mean head).
  EXPECT_EQ(vae.Encode(data[0]), vae.Encode(data[0]));
}

TEST(AutoencoderTest, ReconstructionErrorSeparatesOutliers) {
  Rng rng(5);
  AutoencoderConfig cfg;
  cfg.input_dim = 6;
  cfg.hidden_dim = 2;
  cfg.activation = Activation::kTanh;
  Autoencoder ae(AutoencoderKind::kPlain, cfg, &rng);
  Batch data = PlanarData(300, &rng);
  ae.Train(data, 60);
  double inlier = ae.ReconstructionError(data[0]);
  // A point far off the training manifold.
  double outlier = ae.ReconstructionError({5, -5, 0, 0, 5, -5});
  EXPECT_GT(outlier, inlier * 5.0);
}

TEST(GanTest, TrainsTowardEquilibriumAndGeneratesInRange) {
  Rng rng(6);
  // Real data: 2-D points on a small square around (0.5, -0.5).
  Batch real;
  for (int i = 0; i < 200; ++i) {
    real.push_back({static_cast<float>(0.5 + rng.Uniform(-0.1, 0.1)),
                    static_cast<float>(-0.5 + rng.Uniform(-0.1, 0.1))});
  }
  GanConfig cfg;
  cfg.latent_dim = 4;
  cfg.data_dim = 2;
  cfg.hidden_dim = 16;
  Gan gan(cfg, &rng);
  Gan::StepStats stats = gan.Train(real, 30);
  (void)stats;
  Batch fake = gan.Generate(100);
  ASSERT_EQ(fake.size(), 100u);
  double mx = 0.0, my = 0.0;
  for (const auto& p : fake) {
    mx += p[0];
    my += p[1];
  }
  mx /= 100.0;
  my /= 100.0;
  // Generator mean should migrate toward the real cluster.
  EXPECT_NEAR(mx, 0.5, 0.3);
  EXPECT_NEAR(my, -0.5, 0.3);
}

TEST(GanTest, DiscriminatorScoreIsProbability) {
  Rng rng(7);
  GanConfig cfg;
  cfg.data_dim = 2;
  Gan gan(cfg, &rng);
  double s = gan.DiscriminatorScore({0.0f, 0.0f});
  EXPECT_GE(s, 0.0);
  EXPECT_LE(s, 1.0);
}

TEST(BinaryClassifierTest, LearnsLinearlySeparableData) {
  Rng rng(8);
  ClassifierConfig cfg;
  cfg.input_dim = 2;
  cfg.hidden = {8};
  cfg.learning_rate = 0.05f;
  BinaryClassifier clf(cfg, &rng);
  Batch x;
  std::vector<int> y;
  for (int i = 0; i < 200; ++i) {
    float a = static_cast<float>(rng.Uniform(-1, 1));
    float b = static_cast<float>(rng.Uniform(-1, 1));
    x.push_back({a, b});
    y.push_back(a + b > 0 ? 1 : 0);
  }
  clf.Train(x, y, 30);
  int correct = 0;
  for (size_t i = 0; i < x.size(); ++i) {
    if (clf.Predict(x[i]) == y[i]) ++correct;
  }
  EXPECT_GT(correct, 185);
}

TEST(BinaryClassifierTest, PositiveWeightShiftsDecisions) {
  // 95:5 imbalance; the weighted model should recall more positives.
  Rng rng(9);
  Batch x;
  std::vector<int> y;
  for (int i = 0; i < 400; ++i) {
    bool pos = rng.Bernoulli(0.05);
    float a = static_cast<float>(rng.Uniform(0, 1)) + (pos ? 0.4f : 0.0f);
    x.push_back({a});
    y.push_back(pos ? 1 : 0);
  }
  ClassifierConfig plain_cfg;
  plain_cfg.input_dim = 1;
  plain_cfg.hidden = {4};
  BinaryClassifier plain(plain_cfg, &rng);
  plain.Train(x, y, 20);
  ClassifierConfig weighted_cfg = plain_cfg;
  weighted_cfg.positive_weight = 10.0f;
  Rng rng2(9);
  BinaryClassifier weighted(weighted_cfg, &rng2);
  weighted.Train(x, y, 20);
  int plain_pos = 0, weighted_pos = 0;
  for (size_t i = 0; i < x.size(); ++i) {
    plain_pos += plain.Predict(x[i]);
    weighted_pos += weighted.Predict(x[i]);
  }
  EXPECT_GE(weighted_pos, plain_pos);
}

TEST(BinaryClassifierTest, SoftLabelsTrain) {
  Rng rng(10);
  ClassifierConfig cfg;
  cfg.input_dim = 1;
  cfg.hidden = {4};
  BinaryClassifier clf(cfg, &rng);
  Batch x = {{0.0f}, {1.0f}};
  std::vector<double> probs = {0.1, 0.9};
  clf.TrainSoft(x, probs, 200);
  EXPECT_LT(clf.PredictProba({0.0f}), 0.5);
  EXPECT_GT(clf.PredictProba({1.0f}), 0.5);
}

TEST(MulticlassClassifierTest, LearnsThreeClusters) {
  Rng rng(11);
  MulticlassClassifier clf(2, {16}, 3, 0.05f, &rng);
  Batch x;
  std::vector<size_t> y;
  const float cx[3] = {0.0f, 2.0f, -2.0f};
  const float cy[3] = {2.0f, -1.0f, -1.0f};
  for (int i = 0; i < 300; ++i) {
    size_t c = static_cast<size_t>(rng.UniformInt(0, 2));
    x.push_back({cx[c] + static_cast<float>(rng.Normal(0, 0.3)),
                 cy[c] + static_cast<float>(rng.Normal(0, 0.3))});
    y.push_back(c);
  }
  clf.Train(x, y, 30);
  EXPECT_GT(clf.Accuracy(x, y), 0.95);
  auto probs = clf.PredictProba(x[0]);
  double sum = 0.0;
  for (double p : probs) sum += p;
  EXPECT_NEAR(sum, 1.0, 1e-5);
}

TEST(EmbeddingTableTest, LookupAndGradientScatter) {
  Rng rng(12);
  EmbeddingTable emb(10, 4, &rng);
  EXPECT_EQ(emb.vocab_size(), 10u);
  EXPECT_EQ(emb.dim(), 4u);
  VarPtr rows = emb.Lookup({1, 3, 1});
  EXPECT_EQ(rows->value.rows(), 3u);
  VarPtr loss = Sum(Square(rows));
  Backward(loss);
  const VarPtr& table = emb.table();
  // Row 1 used twice, row 3 once, row 0 never.
  double g1 = 0.0, g3 = 0.0, g0 = 0.0;
  for (size_t j = 0; j < 4; ++j) {
    g1 += std::fabs(table->grad.at(1, j));
    g3 += std::fabs(table->grad.at(3, j));
    g0 += std::fabs(table->grad.at(0, j));
  }
  EXPECT_GT(g1, 0.0);
  EXPECT_GT(g3, 0.0);
  EXPECT_DOUBLE_EQ(g0, 0.0);
}

TEST(SerializeTest, RoundTripRestoresWeights) {
  Rng rng(13);
  auto model = Sequential::Mlp({3, 5, 2}, Activation::kRelu, &rng);
  std::ostringstream out;
  ASSERT_TRUE(SaveParameters(model->Parameters(), &out).ok());

  Rng rng2(99);  // different init
  auto model2 = Sequential::Mlp({3, 5, 2}, Activation::kRelu, &rng2);
  std::istringstream in(out.str());
  ASSERT_TRUE(LoadParameters(model2->Parameters(), &in).ok());

  auto p1 = model->Parameters();
  auto p2 = model2->Parameters();
  ASSERT_EQ(p1.size(), p2.size());
  for (size_t i = 0; i < p1.size(); ++i) {
    ASSERT_EQ(p1[i]->value.size(), p2[i]->value.size());
    for (size_t j = 0; j < p1[i]->value.size(); ++j) {
      EXPECT_FLOAT_EQ(p1[i]->value[j], p2[i]->value[j]);
    }
  }
}

TEST(SerializeTest, ShapeMismatchRejected) {
  Rng rng(14);
  auto small = Sequential::Mlp({2, 3}, Activation::kRelu, &rng);
  auto big = Sequential::Mlp({2, 4}, Activation::kRelu, &rng);
  std::ostringstream out;
  ASSERT_TRUE(SaveParameters(small->Parameters(), &out).ok());
  std::istringstream in(out.str());
  Status s = LoadParameters(big->Parameters(), &in);
  EXPECT_FALSE(s.ok());
}

TEST(SerializeTest, CountMismatchRejected) {
  Rng rng(15);
  auto one = Sequential::Mlp({2, 3}, Activation::kRelu, &rng);
  auto two = Sequential::Mlp({2, 3, 4}, Activation::kRelu, &rng);
  std::ostringstream out;
  ASSERT_TRUE(SaveParameters(one->Parameters(), &out).ok());
  std::istringstream in(out.str());
  EXPECT_FALSE(LoadParameters(two->Parameters(), &in).ok());
}

TEST(SerializeTest, BadMagicRejected) {
  Rng rng(16);
  auto model = Sequential::Mlp({2, 3}, Activation::kRelu, &rng);
  std::istringstream in("garbage data");
  EXPECT_FALSE(LoadParameters(model->Parameters(), &in).ok());
}

TEST(SerializeTest, FileRoundTrip) {
  Rng rng(17);
  auto model = Sequential::Mlp({2, 2}, Activation::kRelu, &rng);
  std::string path = "/tmp/autodc_ckpt_test.bin";
  ASSERT_TRUE(SaveParametersToFile(model->Parameters(), path).ok());
  ASSERT_TRUE(LoadParametersFromFile(model->Parameters(), path).ok());
  std::remove(path.c_str());
  EXPECT_FALSE(LoadParametersFromFile(model->Parameters(), path).ok());
}

}  // namespace
}  // namespace autodc::nn
