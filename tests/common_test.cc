// Tests for Status/Result, Rng determinism, env parsing, the JSON
// writer, and string utilities.
#include <gtest/gtest.h>

#include <cstdlib>
#include <limits>

#include "src/common/env.h"
#include "src/common/json.h"
#include "src/common/result.h"
#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/common/string_util.h"

namespace autodc {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad arity");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad arity");
  EXPECT_EQ(s.ToString(), "invalid_argument: bad arity");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kInternal); ++c) {
    EXPECT_STRNE(StatusCodeName(static_cast<StatusCode>(c)), "unknown");
  }
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  auto inner = []() { return Status::NotFound("x"); };
  auto outer = [&]() -> Status {
    AUTODC_RETURN_NOT_OK(inner());
    return Status::OK();
  };
  EXPECT_EQ(outer().code(), StatusCode::kNotFound);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie(), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::IoError("disk");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
  EXPECT_EQ(r.ValueOr(-1), -1);
}

TEST(ResultTest, OkStatusIsRejected) {
  Result<int> r = Status::OK();
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto make = [](bool fail) -> Result<int> {
    if (fail) return Status::NotFound("gone");
    return 7;
  };
  auto use = [&](bool fail) -> Result<int> {
    int v = 0;
    AUTODC_ASSIGN_OR_RETURN(v, make(fail));
    return v + 1;
  };
  EXPECT_EQ(use(false).ValueOrDie(), 8);
  EXPECT_EQ(use(true).status().code(), StatusCode::kNotFound);
}

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.UniformInt(0, 1000000), b.UniformInt(0, 1000000));
  }
}

TEST(RngTest, UniformIntInRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, BernoulliRespectsProbability) {
  Rng rng(2);
  int heads = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.Bernoulli(0.3)) ++heads;
  }
  EXPECT_NEAR(heads / 10000.0, 0.3, 0.03);
}

TEST(RngTest, CategoricalFollowsWeights) {
  Rng rng(3);
  std::vector<double> w = {1.0, 3.0};
  int ones = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.Categorical(w) == 1) ++ones;
  }
  EXPECT_NEAR(ones / 10000.0, 0.75, 0.03);
}

TEST(RngTest, CategoricalAllZeroWeightsReturnsZero) {
  Rng rng(4);
  std::vector<double> w = {0.0, 0.0, 0.0};
  EXPECT_EQ(rng.Categorical(w), 0u);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(5);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  std::vector<int> sorted = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(RngTest, SampleIndicesDistinct) {
  Rng rng(6);
  std::vector<size_t> idx = rng.SampleIndices(100, 10);
  EXPECT_EQ(idx.size(), 10u);
  std::sort(idx.begin(), idx.end());
  EXPECT_EQ(std::unique(idx.begin(), idx.end()), idx.end());
  for (size_t i : idx) EXPECT_LT(i, 100u);
}

TEST(RngTest, SampleIndicesClampsToN) {
  Rng rng(7);
  EXPECT_EQ(rng.SampleIndices(3, 10).size(), 3u);
}


// RAII env var for the EnvSizeT/EnvFlag/EnvString tests.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    if (value != nullptr) {
      setenv(name, value, /*overwrite=*/1);
    } else {
      unsetenv(name);
    }
  }
  ~ScopedEnv() { unsetenv(name_); }

 private:
  const char* name_;
};

TEST(EnvTest, UnsetReturnsFallback) {
  ScopedEnv env("AUTODC_TEST_SIZET", nullptr);
  EXPECT_EQ(EnvSizeT("AUTODC_TEST_SIZET", 7, 1, 100), 7u);
}

TEST(EnvTest, ValidValueParses) {
  ScopedEnv env("AUTODC_TEST_SIZET", "42");
  EXPECT_EQ(EnvSizeT("AUTODC_TEST_SIZET", 7, 1, 100), 42u);
}

TEST(EnvTest, WhitespaceTolerated) {
  ScopedEnv env("AUTODC_TEST_SIZET", "  8  ");
  EXPECT_EQ(EnvSizeT("AUTODC_TEST_SIZET", 7, 1, 100), 8u);
}

TEST(EnvTest, NonNumericFallsBack) {
  ScopedEnv env("AUTODC_TEST_SIZET", "lots");
  EXPECT_EQ(EnvSizeT("AUTODC_TEST_SIZET", 7, 1, 100), 7u);
}

TEST(EnvTest, TrailingGarbageFallsBack) {
  ScopedEnv env("AUTODC_TEST_SIZET", "12abc");
  EXPECT_EQ(EnvSizeT("AUTODC_TEST_SIZET", 7, 1, 100), 7u);
}

TEST(EnvTest, NegativeFallsBack) {
  ScopedEnv env("AUTODC_TEST_SIZET", "-3");
  EXPECT_EQ(EnvSizeT("AUTODC_TEST_SIZET", 7, 1, 100), 7u);
}

TEST(EnvTest, OutOfRangeFallsBack) {
  ScopedEnv env("AUTODC_TEST_SIZET", "100000");
  EXPECT_EQ(EnvSizeT("AUTODC_TEST_SIZET", 7, 1, 1024), 7u);
  ScopedEnv env2("AUTODC_TEST_SIZET", "0");
  EXPECT_EQ(EnvSizeT("AUTODC_TEST_SIZET", 7, 1, 1024), 7u);
}

TEST(EnvTest, OverflowFallsBack) {
  ScopedEnv env("AUTODC_TEST_SIZET", "99999999999999999999999999");
  EXPECT_EQ(EnvSizeT("AUTODC_TEST_SIZET", 7, 1,
                     std::numeric_limits<size_t>::max()),
            7u);
}

TEST(EnvTest, FlagRecognizesFalseSpellings) {
  for (const char* v : {"0", "false", "FALSE", "off", "Off", "no"}) {
    ScopedEnv env("AUTODC_TEST_FLAG", v);
    EXPECT_FALSE(EnvFlag("AUTODC_TEST_FLAG", true)) << v;
  }
  for (const char* v : {"1", "true", "on", "yes", "weird"}) {
    ScopedEnv env("AUTODC_TEST_FLAG", v);
    EXPECT_TRUE(EnvFlag("AUTODC_TEST_FLAG", false)) << v;
  }
}

TEST(EnvTest, FlagUnsetOrEmptyUsesFallback) {
  ScopedEnv unset("AUTODC_TEST_FLAG", nullptr);
  EXPECT_TRUE(EnvFlag("AUTODC_TEST_FLAG", true));
  EXPECT_FALSE(EnvFlag("AUTODC_TEST_FLAG", false));
  ScopedEnv empty("AUTODC_TEST_FLAG", "");
  EXPECT_TRUE(EnvFlag("AUTODC_TEST_FLAG", true));
}

TEST(EnvTest, StringReturnsValueOrFallback) {
  ScopedEnv unset("AUTODC_TEST_STR", nullptr);
  EXPECT_EQ(EnvString("AUTODC_TEST_STR", "dflt"), "dflt");
  ScopedEnv set("AUTODC_TEST_STR", "stderr");
  EXPECT_EQ(EnvString("AUTODC_TEST_STR", "dflt"), "stderr");
}

TEST(JsonTest, EscapesControlAndQuoteCharacters) {
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("back\\slash"), "back\\\\slash");
  EXPECT_EQ(JsonEscape("tab\tnl\n"), "tab\\tnl\\n");
  EXPECT_EQ(JsonEscape(std::string(1, '\x01')), "\\u0001");
}

TEST(JsonTest, NonFiniteNumbersEmitNull) {
  EXPECT_EQ(JsonNumber(std::numeric_limits<double>::quiet_NaN()), "null");
  EXPECT_EQ(JsonNumber(std::numeric_limits<double>::infinity()), "null");
  EXPECT_EQ(JsonNumber(-std::numeric_limits<double>::infinity()), "null");
  EXPECT_EQ(JsonNumber(1.5), "1.5");
}

TEST(JsonTest, ObjectRoutesDoublesThroughJsonNumber) {
  JsonObject o;
  o.Set("ok", 2.0).Set("bad", std::numeric_limits<double>::quiet_NaN());
  EXPECT_EQ(o.str(), "{\"ok\":2,\"bad\":null}");
}

TEST(JsonTest, ObjectEscapesKeysAndStrings) {
  JsonObject o;
  o.Set(std::string("k\"ey"), std::string("v\nal"));
  EXPECT_EQ(o.str(), "{\"k\\\"ey\":\"v\\nal\"}");
}

TEST(StringUtilTest, SplitKeepsEmptyFields) {
  EXPECT_EQ(Split("a,,b", ','), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("x", ','), (std::vector<std::string>{"x"}));
}

TEST(StringUtilTest, SplitWhitespaceDropsEmpty) {
  EXPECT_EQ(SplitWhitespace("  a \t b\nc  "),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(SplitWhitespace("   ").empty());
}

TEST(StringUtilTest, JoinRoundTrips) {
  std::vector<std::string> parts = {"a", "b", "c"};
  EXPECT_EQ(Join(parts, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StringUtilTest, CaseConversions) {
  EXPECT_EQ(ToLower("HeLLo"), "hello");
  EXPECT_EQ(ToUpper("HeLLo"), "HELLO");
  EXPECT_EQ(Capitalize("jOHN"), "John");
  EXPECT_EQ(Capitalize(""), "");
}

TEST(StringUtilTest, TrimStripsWhitespace) {
  EXPECT_EQ(Trim("  x y  "), "x y");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
}

TEST(StringUtilTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_FALSE(StartsWith("fo", "foo"));
  EXPECT_TRUE(EndsWith("foobar", "bar"));
  EXPECT_FALSE(EndsWith("ar", "bar"));
}

}  // namespace
}  // namespace autodc
