// Tests for the relational substrate: values, schemas, tables, CSV, FDs,
// CFDs, FD discovery, and the Figure-4 heterogeneous table graph.
#include <gtest/gtest.h>

#include "src/data/csv.h"
#include "src/data/dependencies.h"
#include "src/data/schema.h"
#include "src/data/table.h"
#include "src/data/table_graph.h"
#include "src/data/value.h"

namespace autodc::data {
namespace {

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_EQ(Value(int64_t{5}).type(), ValueType::kInt);
  EXPECT_EQ(Value(2.5).type(), ValueType::kDouble);
  EXPECT_EQ(Value("hi").type(), ValueType::kString);
  EXPECT_EQ(Value(int64_t{5}).AsInt(), 5);
  EXPECT_DOUBLE_EQ(Value(2.5).AsDouble(), 2.5);
  EXPECT_EQ(Value("hi").AsString(), "hi");
}

TEST(ValueTest, ToNumericConversions) {
  bool ok = false;
  EXPECT_DOUBLE_EQ(Value(int64_t{3}).ToNumeric(&ok), 3.0);
  EXPECT_TRUE(ok);
  EXPECT_DOUBLE_EQ(Value(1.5).ToNumeric(&ok), 1.5);
  EXPECT_TRUE(ok);
  Value("abc").ToNumeric(&ok);
  EXPECT_FALSE(ok);
  Value::Null().ToNumeric(&ok);
  EXPECT_FALSE(ok);
}

TEST(ValueTest, ToStringRendering) {
  EXPECT_EQ(Value::Null().ToString(), "");
  EXPECT_EQ(Value(int64_t{42}).ToString(), "42");
  EXPECT_EQ(Value("x").ToString(), "x");
}

TEST(ValueTest, EqualityAndOrdering) {
  EXPECT_EQ(Value(int64_t{1}), Value(int64_t{1}));
  // Equality agrees with the total order: ints and doubles compare by
  // numeric value (they were historically unequal under ==, which made
  // == disagree with <).
  EXPECT_EQ(Value(int64_t{1}), Value(1.0));
  EXPECT_NE(Value(int64_t{1}), Value(1.5));
  EXPECT_NE(Value(int64_t{1}), Value("1"));
  EXPECT_LT(Value::Null(), Value(int64_t{0}));
  EXPECT_LT(Value(int64_t{1}), Value(int64_t{2}));
  EXPECT_LT(Value(int64_t{3}), Value("a"));  // numbers < strings
  EXPECT_LT(Value("a"), Value("b"));
  // Cross numeric comparison int vs double by value.
  EXPECT_LT(Value(int64_t{1}), Value(1.5));
}

TEST(ValueTest, EqualityMatchesOrderEquivalence) {
  // a == b must hold exactly when !(a < b) && !(b < a), for every
  // cross-type pair the order ranks equal.
  const Value vals[] = {Value::Null(),      Value(int64_t{0}), Value(0.0),
                        Value(int64_t{1}),  Value(1.0),        Value(1.5),
                        Value(int64_t{-3}), Value(-3.0),       Value("1"),
                        Value("")};
  for (const Value& a : vals) {
    for (const Value& b : vals) {
      bool order_equiv = !(a < b) && !(b < a);
      EXPECT_EQ(a == b, order_equiv)
          << a.ToString() << " (" << ValueTypeName(a.type()) << ") vs "
          << b.ToString() << " (" << ValueTypeName(b.type()) << ")";
    }
  }
}

TEST(ValueTest, HashConsistentWithEquality) {
  ValueHash h;
  EXPECT_EQ(h(Value("abc")), h(Value("abc")));
  EXPECT_EQ(h(Value(int64_t{7})), h(Value(int64_t{7})));
  // Equal values must hash equal across the int/double divide.
  EXPECT_EQ(h(Value(int64_t{1})), h(Value(1.0)));
  EXPECT_EQ(h(Value(int64_t{-3})), h(Value(-3.0)));
  EXPECT_EQ(h(Value(0.0)), h(Value(-0.0)));  // -0.0 == 0.0
  EXPECT_EQ(h(Value(int64_t{0})), h(Value(-0.0)));
}

TEST(SchemaTest, IndexLookup) {
  Schema s = Schema::OfStrings({"a", "b", "c"});
  EXPECT_EQ(s.num_columns(), 3u);
  EXPECT_EQ(*s.IndexOf("b"), 1u);
  EXPECT_FALSE(s.IndexOf("z").has_value());
  EXPECT_EQ(s.Names(), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(TableTest, AppendRowChecksArity) {
  Table t(Schema::OfStrings({"a", "b"}));
  EXPECT_TRUE(t.AppendRow({Value("1"), Value("2")}).ok());
  Status s = t.AppendRow({Value("1")});
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(t.num_rows(), 1u);
}

TEST(TableTest, GetByName) {
  Table t(Schema::OfStrings({"a", "b"}), "test");
  ASSERT_TRUE(t.AppendRow({Value("x"), Value("y")}).ok());
  EXPECT_EQ(t.Get(0, "b").ValueOrDie().AsString(), "y");
  EXPECT_EQ(t.Get(0, "zz").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(t.Get(5, "a").status().code(), StatusCode::kOutOfRange);
}

TEST(TableTest, DistinctColumnValuesSkipsNulls) {
  Table t(Schema::OfStrings({"a"}));
  ASSERT_TRUE(t.AppendRow({Value("x")}).ok());
  ASSERT_TRUE(t.AppendRow({Value::Null()}).ok());
  ASSERT_TRUE(t.AppendRow({Value("x")}).ok());
  ASSERT_TRUE(t.AppendRow({Value("y")}).ok());
  EXPECT_EQ(t.DistinctColumnValues(0).size(), 2u);
}

TEST(TableTest, FilterAndProject) {
  Table t(Schema::OfStrings({"a", "b"}));
  ASSERT_TRUE(t.AppendRow({Value("1"), Value("x")}).ok());
  ASSERT_TRUE(t.AppendRow({Value("2"), Value("y")}).ok());
  Table f = t.Filter([](const Row& r) { return r[0].AsString() == "2"; });
  EXPECT_EQ(f.num_rows(), 1u);
  Table p = t.Project({1}).ValueOrDie();
  EXPECT_EQ(p.num_columns(), 1u);
  EXPECT_EQ(p.schema().column(0).name, "b");
  EXPECT_EQ(t.Project({9}).status().code(), StatusCode::kOutOfRange);
}

TEST(TableTest, NullFraction) {
  Table t(Schema::OfStrings({"a", "b"}));
  ASSERT_TRUE(t.AppendRow({Value("1"), Value::Null()}).ok());
  ASSERT_TRUE(t.AppendRow({Value::Null(), Value::Null()}).ok());
  EXPECT_DOUBLE_EQ(t.NullFraction(), 0.75);
}

TEST(CsvTest, ParsesHeaderAndTypes) {
  auto r = ReadCsvString("id,name,score\n1,alice,3.5\n2,bob,4\n");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const Table& t = r.ValueOrDie();
  EXPECT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.schema().column(0).type, ValueType::kInt);
  EXPECT_EQ(t.schema().column(1).type, ValueType::kString);
  EXPECT_EQ(t.schema().column(2).type, ValueType::kDouble);
  EXPECT_EQ(t.at(0, 1).AsString(), "alice");
  EXPECT_EQ(t.at(1, 0).AsInt(), 2);
}

TEST(CsvTest, QuotedFieldsWithDelimitersAndNewlines) {
  auto r = ReadCsvString(
      "a,b\n\"x,y\",\"line1\nline2\"\n\"He said \"\"hi\"\"\",plain\n");
  ASSERT_TRUE(r.ok());
  const Table& t = r.ValueOrDie();
  EXPECT_EQ(t.at(0, 0).AsString(), "x,y");
  EXPECT_EQ(t.at(0, 1).AsString(), "line1\nline2");
  EXPECT_EQ(t.at(1, 0).AsString(), "He said \"hi\"");
}

TEST(CsvTest, EmptyFieldsBecomeNulls) {
  auto r = ReadCsvString("a,b\n1,\n,2\n");
  ASSERT_TRUE(r.ok());
  const Table& t = r.ValueOrDie();
  EXPECT_TRUE(t.at(0, 1).is_null());
  EXPECT_TRUE(t.at(1, 0).is_null());
}

TEST(CsvTest, RaggedRowIsError) {
  auto r = ReadCsvString("a,b\n1,2,3\n");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(CsvTest, UnterminatedQuoteIsError) {
  auto r = ReadCsvString("a\n\"oops\n");
  EXPECT_FALSE(r.ok());
}

TEST(CsvTest, RoundTrip) {
  auto r = ReadCsvString("a,b\nhello,\"x,y\"\n1,2\n",
                         CsvOptions{.infer_types = false});
  ASSERT_TRUE(r.ok());
  std::string out = WriteCsvString(r.ValueOrDie());
  auto r2 = ReadCsvString(out, CsvOptions{.infer_types = false});
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2.ValueOrDie().at(0, 1).AsString(), "x,y");
}

TEST(CsvTest, CrlfLineEndingsParseLikeLf) {
  auto r = ReadCsvString("id,name\r\n1,alice\r\n2,bob\r\n");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const Table& t = r.ValueOrDie();
  EXPECT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.schema().column(1).name, "name");
  EXPECT_EQ(t.at(0, 1).AsString(), "alice");
  EXPECT_EQ(t.at(1, 1).AsString(), "bob");
}

TEST(CsvTest, CrlfInsideQuotedFieldIsPreserved) {
  auto r = ReadCsvString("a,b\r\n\"line1\r\nline2\",plain\r\n",
                         CsvOptions{.infer_types = false});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const Table& t = r.ValueOrDie();
  ASSERT_EQ(t.num_rows(), 1u);
  EXPECT_EQ(t.at(0, 0).AsString(), "line1\r\nline2");
  EXPECT_EQ(t.at(0, 1).AsString(), "plain");
}

TEST(CsvTest, BareCarriageReturnIsFieldData) {
  // A '\r' NOT followed by '\n' is payload, not a line ending — the old
  // reader silently stripped it, corrupting the field.
  auto r = ReadCsvString("a,b\nx\ry,z\n", CsvOptions{.infer_types = false});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.ValueOrDie().at(0, 0).AsString(), "x\ry");
}

TEST(CsvTest, WriterQuotesCarriageReturns) {
  std::vector<Column> cols = {Column{"a", ValueType::kString},
                              Column{"b", ValueType::kString}};
  Table t{Schema(cols)};
  ASSERT_TRUE(
      t.AppendRow({Value(std::string("x\ry")), Value(std::string("c\r\nd"))})
          .ok());
  std::string csv = WriteCsvString(t);
  auto r = ReadCsvString(csv, CsvOptions{.infer_types = false});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const Table& back = r.ValueOrDie();
  ASSERT_EQ(back.num_rows(), 1u);
  EXPECT_EQ(back.at(0, 0).AsString(), "x\ry");
  EXPECT_EQ(back.at(0, 1).AsString(), "c\r\nd");
}

TEST(CsvTest, NoHeaderNamesColumns) {
  auto r = ReadCsvString("1,2\n3,4\n", CsvOptions{.has_header = false});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie().schema().column(0).name, "c0");
  EXPECT_EQ(r.ValueOrDie().num_rows(), 2u);
}

// The employee example from Figure 4 of the paper: FD1 EmployeeID ->
// DepartmentID is violated by rows 0 and 3 (same name different dept is
// fine — names are not keys — but id 0001/0004 map consistently; we
// construct the canonical violation instead).
Table EmployeeTable() {
  Table t(Schema::OfStrings(
      {"EmployeeID", "EmployeeName", "DepartmentID", "DepartmentName"}));
  EXPECT_TRUE(
      t.AppendRow({Value("0001"), Value("John Doe"), Value("1"),
                   Value("Human Resources")}).ok());
  EXPECT_TRUE(t.AppendRow({Value("0002"), Value("Jane Doe"), Value("2"),
                           Value("Marketing")}).ok());
  EXPECT_TRUE(
      t.AppendRow({Value("0003"), Value("John Smith"), Value("1"),
                   Value("Human Resources")}).ok());
  EXPECT_TRUE(t.AppendRow({Value("0004"), Value("John Doe"), Value("1"),
                           Value("Finance")}).ok());
  return t;
}

TEST(DependenciesTest, HoldsAndViolations) {
  Table t = EmployeeTable();
  // EmployeeID -> DepartmentID holds (ids are unique).
  FunctionalDependency fd1{{0}, 2};
  EXPECT_TRUE(Holds(t, fd1));
  // DepartmentID -> DepartmentName is violated: dept 1 is both
  // "Human Resources" (rows 0,2) and "Finance" (row 3).
  FunctionalDependency fd2{{2}, 3};
  EXPECT_FALSE(Holds(t, fd2));
  auto v = FindViolations(t, fd2);
  ASSERT_FALSE(v.empty());
  EXPECT_LT(Confidence(t, fd2), 1.0);
  EXPECT_DOUBLE_EQ(Confidence(t, fd1), 1.0);
}

TEST(DependenciesTest, NullLhsNeverMatches) {
  Table t(Schema::OfStrings({"a", "b"}));
  ASSERT_TRUE(t.AppendRow({Value::Null(), Value("1")}).ok());
  ASSERT_TRUE(t.AppendRow({Value::Null(), Value("2")}).ok());
  EXPECT_TRUE(Holds(t, FunctionalDependency{{0}, 1}));
}

TEST(DependenciesTest, CompositeLhs) {
  Table t(Schema::OfStrings({"a", "b", "c"}));
  ASSERT_TRUE(t.AppendRow({Value("1"), Value("x"), Value("p")}).ok());
  ASSERT_TRUE(t.AppendRow({Value("1"), Value("y"), Value("q")}).ok());
  ASSERT_TRUE(t.AppendRow({Value("1"), Value("x"), Value("p")}).ok());
  EXPECT_TRUE(Holds(t, FunctionalDependency{{0, 1}, 2}));
  EXPECT_FALSE(Holds(t, FunctionalDependency{{0}, 2}));
}

TEST(DependenciesTest, DiscoverFindsMinimalFds) {
  Table t = EmployeeTable();
  auto fds = DiscoverFds(t, 1);
  // EmployeeID (a key) determines everything: 3 FDs with LHS {0}.
  int from_id = 0;
  for (const auto& fd : fds) {
    if (fd.lhs == std::vector<size_t>{0}) ++from_id;
  }
  EXPECT_EQ(from_id, 3);
  // DepartmentID -> DepartmentName must NOT be discovered (violated).
  for (const auto& fd : fds) {
    EXPECT_FALSE((fd.lhs == std::vector<size_t>{2} && fd.rhs == 3));
  }
}

TEST(DependenciesTest, DiscoverRespectsMinimality) {
  Table t(Schema::OfStrings({"k", "a", "b"}));
  ASSERT_TRUE(t.AppendRow({Value("1"), Value("x"), Value("p")}).ok());
  ASSERT_TRUE(t.AppendRow({Value("2"), Value("x"), Value("q")}).ok());
  auto fds = DiscoverFds(t, 2);
  // k->a and k->b hold with |LHS|=1; no FD with LHS {k,a} etc. should be
  // reported for the same RHS.
  for (const auto& fd : fds) {
    if (fd.lhs.size() == 2) {
      EXPECT_EQ(std::count(fd.lhs.begin(), fd.lhs.end(), 0u), 0)
          << "non-minimal FD extending key reported";
    }
  }
}

TEST(DependenciesTest, CfdConstantPattern) {
  Table t = EmployeeTable();
  // CFD: DepartmentID=1 -> DepartmentName="Human Resources".
  ConditionalFd cfd{FunctionalDependency{{2}, 3}, {"1", "Human Resources"}};
  auto v = FindCfdViolations(t, cfd);
  ASSERT_EQ(v.size(), 1u);  // row 3 (Finance) breaks it
  EXPECT_EQ(v[0].row_a, 3u);
  EXPECT_EQ(v[0].row_b, 3u);
}

TEST(DependenciesTest, CfdWildcardPattern) {
  Table t = EmployeeTable();
  ConditionalFd cfd{FunctionalDependency{{2}, 3},
                    {ConditionalFd::kWildcard, ConditionalFd::kWildcard}};
  EXPECT_FALSE(FindCfdViolations(t, cfd).empty());
}

TEST(TableGraphTest, BuildsFigure4Graph) {
  Table t = EmployeeTable();
  std::vector<FunctionalDependency> fds = {{{0}, 2}, {{2}, 3}};
  TableGraph g = TableGraph::Build(t, fds);
  // 4 ids + 3 names + 2 dept ids + 3 dept names = 12 nodes.
  EXPECT_EQ(g.num_nodes(), 12u);
  // Same value in different columns -> distinct nodes.
  EXPECT_GE(g.FindNode(0, "0001"), 0);
  EXPECT_EQ(g.FindNode(1, "0001"), -1);
  // "John Doe" appears once as a node even though in two tuples.
  EXPECT_EQ(g.ValueNodes("John Doe").size(), 1u);
}

TEST(TableGraphTest, CoOccurrenceWeightsAccumulate) {
  Table t = EmployeeTable();
  TableGraph g = TableGraph::Build(t);
  // DepartmentID "1" co-occurs with DepartmentName "Human Resources" twice.
  int64_t dept = g.FindNode(2, "1");
  int64_t name = g.FindNode(3, "Human Resources");
  ASSERT_GE(dept, 0);
  ASSERT_GE(name, 0);
  double weight = 0.0;
  for (size_t ei : g.NeighborEdges(static_cast<size_t>(dept))) {
    const TableGraph::Edge& e = g.edges()[ei];
    if (e.to == static_cast<size_t>(name) &&
        e.kind == EdgeKind::kCoOccurrence) {
      weight = e.weight;
    }
  }
  EXPECT_DOUBLE_EQ(weight, 2.0);
}

TEST(TableGraphTest, FdEdgesAreDirected) {
  Table t = EmployeeTable();
  std::vector<FunctionalDependency> fds = {{{0}, 2}};
  TableGraph g = TableGraph::Build(t, fds);
  int64_t emp = g.FindNode(0, "0001");
  int64_t dept = g.FindNode(2, "1");
  ASSERT_GE(emp, 0);
  ASSERT_GE(dept, 0);
  bool fd_edge_found = false;
  for (size_t ei : g.NeighborEdges(static_cast<size_t>(emp))) {
    const TableGraph::Edge& e = g.edges()[ei];
    if (e.to == static_cast<size_t>(dept) &&
        e.kind == EdgeKind::kFunctionalDependency) {
      fd_edge_found = true;
    }
  }
  EXPECT_TRUE(fd_edge_found);
  // No FD edge in the reverse direction.
  for (size_t ei : g.NeighborEdges(static_cast<size_t>(dept))) {
    const TableGraph::Edge& e = g.edges()[ei];
    EXPECT_FALSE(e.to == static_cast<size_t>(emp) &&
                 e.kind == EdgeKind::kFunctionalDependency);
  }
}

TEST(TableGraphTest, NullCellsProduceNoNodes) {
  Table t(Schema::OfStrings({"a", "b"}));
  ASSERT_TRUE(t.AppendRow({Value("x"), Value::Null()}).ok());
  TableGraph g = TableGraph::Build(t);
  EXPECT_EQ(g.num_nodes(), 1u);
  EXPECT_EQ(g.num_edges(), 0u);
}

}  // namespace
}  // namespace autodc::data
