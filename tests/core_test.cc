// Tests for the orchestration layer: the generic pipeline machinery and
// the end-to-end AutoCurator on a small dirty lake (the Figure 1 flow).
#include <gtest/gtest.h>

#include "src/core/autocurator.h"
#include "src/core/pipeline.h"
#include "src/datagen/er_benchmark.h"
#include "src/datagen/error_injector.h"

namespace autodc::core {
namespace {

TEST(PipelineTest, RunsStagesInOrder) {
  Pipeline p;
  std::vector<std::string> order;
  p.Add("first", [&order](PipelineContext*) {
    order.push_back("first");
    return Status::OK();
  });
  p.Add("second", [&order](PipelineContext*) {
    order.push_back("second");
    return Status::OK();
  });
  PipelineContext ctx;
  ASSERT_TRUE(p.Run(&ctx).ok());
  EXPECT_EQ(order, (std::vector<std::string>{"first", "second"}));
  EXPECT_EQ(ctx.report.size(), 2u);  // one [stage done] line each
  EXPECT_EQ(p.StageNames(),
            (std::vector<std::string>{"first", "second"}));
}

TEST(PipelineTest, StopsAtFirstFailureAndNamesStage) {
  Pipeline p;
  bool third_ran = false;
  p.Add("ok", [](PipelineContext*) { return Status::OK(); });
  p.Add("boom", [](PipelineContext*) {
    return Status::Internal("exploded");
  });
  p.Add("after", [&third_ran](PipelineContext*) {
    third_ran = true;
    return Status::OK();
  });
  PipelineContext ctx;
  Status s = p.Run(&ctx);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("boom"), std::string::npos);
  EXPECT_FALSE(third_ran);
}

TEST(PipelineTest, ContextMetricsAccumulate) {
  Pipeline p;
  p.Add("m", [](PipelineContext* c) {
    c->Metric("m.value", 42.0);
    c->Log("noted");
    return Status::OK();
  });
  PipelineContext ctx;
  ASSERT_TRUE(p.Run(&ctx).ok());
  EXPECT_DOUBLE_EQ(ctx.metrics.at("m.value"), 42.0);
}

// Build a small lake: a dirty products table with planted duplicates, an
// unrelated persons table, plus nulls to impute. The curator must pick
// the right table, dedup it, and clean it.
class AutoCuratorTest : public ::testing::Test {
 protected:
  static std::vector<data::Table> MakeLake(size_t* expected_entities) {
    datagen::ErBenchmarkConfig cfg;
    cfg.domain = datagen::ErDomain::kProducts;
    cfg.num_entities = 60;
    cfg.overlap = 0.6;
    cfg.dirtiness = 0.25;
    cfg.synonym_rate = 0.0;
    cfg.null_rate = 0.0;
    cfg.seed = 9;
    datagen::ErBenchmark bench = datagen::GenerateErBenchmark(cfg);
    // One table holding both copies = a catalog with duplicates.
    data::Table catalog(bench.left.schema(), "product_catalog");
    for (size_t r = 0; r < bench.left.num_rows(); ++r) {
      EXPECT_TRUE(catalog.AppendRow(bench.left.row(r)).ok());
    }
    for (size_t r = 0; r < bench.right.num_rows(); ++r) {
      EXPECT_TRUE(catalog.AppendRow(bench.right.row(r)).ok());
    }
    *expected_entities =
        catalog.num_rows() - bench.matches.size();  // perfect-dedup size
    // A few nulls to impute.
    catalog.Set(0, 2, data::Value::Null());
    catalog.Set(1, 2, data::Value::Null());

    datagen::ErBenchmarkConfig pcfg;
    pcfg.domain = datagen::ErDomain::kPersons;
    pcfg.num_entities = 40;
    pcfg.seed = 10;
    data::Table people = datagen::GenerateErBenchmark(pcfg).left;
    people.set_name("employee_directory");
    return {people, catalog};
  }
};

TEST_F(AutoCuratorTest, EndToEndCuratesTheRightTable) {
  size_t expected_entities = 0;
  std::vector<data::Table> lake = MakeLake(&expected_entities);
  size_t catalog_rows = lake[1].num_rows();

  AutoCuratorConfig cfg;
  cfg.task_query = "product brand model price catalog";
  cfg.max_tables = 1;
  cfg.seed = 4;
  AutoCurator curator(cfg);
  auto result = curator.Curate(lake);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const CurationResult& r = result.ValueOrDie();

  // Discovery picked the catalog (metrics prove the path taken).
  bool picked_catalog = false;
  for (const std::string& line : r.context.report) {
    if (line.find("product_catalog") != std::string::npos &&
        line.find("selected") != std::string::npos) {
      picked_catalog = true;
    }
  }
  EXPECT_TRUE(picked_catalog);

  // Dedup removed a meaningful share of the planted duplicates without
  // collapsing the table.
  size_t out_rows = r.curated.num_rows();
  EXPECT_LT(out_rows, catalog_rows) << "no duplicates were merged";
  EXPECT_GE(out_rows, expected_entities * 8 / 10)
      << "dedup over-merged distinct entities";

  // Imputation filled the planted nulls.
  EXPECT_DOUBLE_EQ(r.curated.NullFraction(), 0.0);
  EXPECT_GE(r.context.metrics.at("impute.cells"), 0.0);

  // The Trainer runtime surfaced per-epoch training curves for the
  // stages that fit models (dedup's DeepER, impute's DAE).
  EXPECT_EQ(r.context.metrics.at("dedup.train_epochs"), 25.0);
  EXPECT_GT(r.context.metrics.count("dedup.train_loss.epoch0"), 0u);
  EXPECT_GT(r.context.metrics.count("dedup.train_loss.epoch24"), 0u);
  EXPECT_GT(r.context.metrics.at("dedup.train_wall_ms"), 0.0);
  EXPECT_EQ(r.context.metrics.at("impute.train_epochs"), 60.0);
  EXPECT_GT(r.context.metrics.count("impute.train_loss.epoch59"), 0u);
}

TEST_F(AutoCuratorTest, EmptyLakeRejected) {
  AutoCuratorConfig cfg;
  AutoCurator curator(cfg);
  EXPECT_EQ(curator.Curate({}).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace autodc::core
