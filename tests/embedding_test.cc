// Tests for the embedding stack: SGNS learns planted semantics, the
// store's neighbour/analogy queries work, graph embeddings respect the
// Figure-4 structure, and composition produces usable tuple vectors.
#include <gtest/gtest.h>

#include "src/data/table_graph.h"
#include "src/datagen/corpus.h"
#include "src/embedding/composition.h"
#include "src/embedding/embedding_store.h"
#include "src/embedding/graph_embedding.h"
#include "src/embedding/sgns.h"
#include "src/embedding/word2vec.h"
#include "src/text/similarity.h"

namespace autodc::embedding {
namespace {

TEST(EmbeddingStoreTest, AddFindAndDimEnforcement) {
  EmbeddingStore store;
  ASSERT_TRUE(store.Add("a", {1.0f, 0.0f}).ok());
  EXPECT_EQ(store.dim(), 2u);
  EXPECT_FALSE(store.Add("b", {1.0f, 0.0f, 0.0f}).ok());
  ASSERT_NE(store.Find("a"), nullptr);
  EXPECT_EQ(store.Find("zz"), nullptr);
  // Overwrite keeps size stable.
  ASSERT_TRUE(store.Add("a", {0.0f, 1.0f}).ok());
  EXPECT_EQ(store.size(), 1u);
  EXPECT_FLOAT_EQ((*store.Find("a"))[1], 1.0f);
}

TEST(EmbeddingStoreTest, NearestNeighborsOrdering) {
  EmbeddingStore store;
  ASSERT_TRUE(store.Add("x", {1.0f, 0.0f}).ok());
  ASSERT_TRUE(store.Add("near", {0.9f, 0.1f}).ok());
  ASSERT_TRUE(store.Add("far", {0.0f, 1.0f}).ok());
  auto nn = store.Nearest("x", 2).ValueOrDie();
  ASSERT_EQ(nn.size(), 2u);
  EXPECT_EQ(nn[0].key, "near");
  EXPECT_EQ(nn[1].key, "far");
  EXPECT_GT(nn[0].similarity, nn[1].similarity);
  EXPECT_FALSE(store.Nearest("missing", 2).ok());
}

TEST(EmbeddingStoreTest, SimilarityErrorsOnMissingKeys) {
  EmbeddingStore store;
  ASSERT_TRUE(store.Add("a", {1.0f}).ok());
  EXPECT_FALSE(store.Similarity("a", "b").ok());
  EXPECT_FALSE(store.Similarity("b", "a").ok());
  EXPECT_DOUBLE_EQ(store.Similarity("a", "a").ValueOrDie(), 1.0);
}

TEST(EmbeddingStoreTest, AnalogyArithmetic) {
  // Hand-crafted vectors where b - a + c lands exactly on d.
  EmbeddingStore store;
  ASSERT_TRUE(store.Add("a", {0.0f, 0.0f}).ok());
  ASSERT_TRUE(store.Add("b", {1.0f, 0.0f}).ok());
  ASSERT_TRUE(store.Add("c", {0.0f, 1.0f}).ok());
  ASSERT_TRUE(store.Add("d", {1.0f, 1.0f}).ok());
  ASSERT_TRUE(store.Add("decoy", {-1.0f, -1.0f}).ok());
  auto result = store.Analogy("a", "b", "c").ValueOrDie();
  ASSERT_FALSE(result.empty());
  EXPECT_EQ(result[0].key, "d");
}

TEST(EmbeddingStoreTest, AverageOfSkipsUnknown) {
  EmbeddingStore store;
  ASSERT_TRUE(store.Add("a", {2.0f, 0.0f}).ok());
  ASSERT_TRUE(store.Add("b", {0.0f, 2.0f}).ok());
  auto avg = store.AverageOf({"a", "b", "unknown"});
  EXPECT_FLOAT_EQ(avg[0], 1.0f);
  EXPECT_FLOAT_EQ(avg[1], 1.0f);
  auto zero = store.AverageOf({"nope"});
  EXPECT_FLOAT_EQ(zero[0], 0.0f);
}

// The central Figure-3 claim: distributed representations learned from
// co-occurrence place semantically related words close together.
class SemanticCorpusTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    datagen::SemanticCorpus corpus = datagen::GenerateSemanticCorpus();
    Word2VecConfig cfg;
    cfg.sgns.dim = 32;
    cfg.sgns.window = 4;
    cfg.sgns.epochs = 8;
    cfg.sgns.seed = 7;
    store_ = new EmbeddingStore(TrainWordEmbeddings(corpus.sentences, cfg));
    corpus_ = new datagen::SemanticCorpus(std::move(corpus));
  }
  static void TearDownTestSuite() {
    delete store_;
    delete corpus_;
    store_ = nullptr;
    corpus_ = nullptr;
  }
  static EmbeddingStore* store_;
  static datagen::SemanticCorpus* corpus_;
};

EmbeddingStore* SemanticCorpusTest::store_ = nullptr;
datagen::SemanticCorpus* SemanticCorpusTest::corpus_ = nullptr;

TEST_F(SemanticCorpusTest, RelatedPairsBeatUnrelatedPairs) {
  double related = 0.0;
  for (const auto& [a, b] : corpus_->related_pairs) {
    related += store_->Similarity(a, b).ValueOrDie();
  }
  related /= corpus_->related_pairs.size();
  double unrelated = 0.0;
  for (const auto& [a, b] : corpus_->unrelated_pairs) {
    unrelated += store_->Similarity(a, b).ValueOrDie();
  }
  unrelated /= corpus_->unrelated_pairs.size();
  EXPECT_GT(related, unrelated + 0.2)
      << "related=" << related << " unrelated=" << unrelated;
}

TEST_F(SemanticCorpusTest, KingMinusManPlusWomanIsNearQueen) {
  auto result = store_->Analogy("man", "woman", "king", 3).ValueOrDie();
  ASSERT_FALSE(result.empty());
  std::vector<std::string> top;
  for (const auto& n : result) top.push_back(n.key);
  EXPECT_TRUE(std::find(top.begin(), top.end(), "queen") != top.end())
      << "queen not in top-3 for king - man + woman";
}

TEST_F(SemanticCorpusTest, MajorityOfPlantedAnalogiesHold) {
  size_t hits = 0;
  for (const auto& q : corpus_->analogies) {
    auto result = store_->Analogy(q.a, q.b, q.c, 3);
    if (!result.ok()) continue;
    for (const auto& n : result.ValueOrDie()) {
      if (n.key == q.d) {
        ++hits;
        break;
      }
    }
  }
  EXPECT_GE(hits * 2, corpus_->analogies.size())
      << hits << "/" << corpus_->analogies.size() << " analogies held";
}

TEST(SgnsTest, CooccurringTokensConverge) {
  // Two tokens always appearing together must embed closer than two
  // tokens never appearing together.
  std::vector<std::vector<size_t>> seqs;
  Rng rng(3);
  for (int i = 0; i < 300; ++i) {
    // {0,1} always co-occur; {2,3} always co-occur; never across.
    if (rng.Bernoulli(0.5)) seqs.push_back({0, 1});
    else seqs.push_back({2, 3});
  }
  SgnsConfig cfg;
  cfg.dim = 16;
  cfg.epochs = 10;
  SgnsModel model(4, cfg);
  std::vector<double> uniform(4, 1.0);
  model.Train(seqs, uniform);
  auto cos = [&](size_t a, size_t b) {
    return text::CosineSimilarity(model.VectorOf(a), model.VectorOf(b));
  };
  EXPECT_GT(cos(0, 1), cos(0, 2));
  EXPECT_GT(cos(2, 3), cos(1, 3));
}

TEST(SgnsTest, TrainingLossDecreases) {
  std::vector<std::vector<size_t>> seqs;
  Rng rng(4);
  for (int i = 0; i < 100; ++i) {
    seqs.push_back({static_cast<size_t>(rng.UniformInt(0, 4)),
                    static_cast<size_t>(rng.UniformInt(0, 4)),
                    static_cast<size_t>(rng.UniformInt(5, 9))});
  }
  SgnsConfig one_epoch;
  one_epoch.epochs = 1;
  SgnsModel early(10, one_epoch);
  std::vector<double> uniform(10, 1.0);
  double first = early.Train(seqs, uniform);
  SgnsConfig many;
  many.epochs = 15;
  SgnsModel late(10, many);
  double last = late.Train(seqs, uniform);
  EXPECT_LT(last, first);
}

TEST(GraphEmbeddingTest, WalksRespectGraphStructure) {
  data::Table t(data::Schema::OfStrings({"a", "b"}));
  ASSERT_TRUE(t.AppendRow({data::Value("x"), data::Value("y")}).ok());
  ASSERT_TRUE(t.AppendRow({data::Value("p"), data::Value("q")}).ok());
  data::TableGraph g = data::TableGraph::Build(t);
  GraphEmbeddingConfig cfg;
  cfg.walks_per_node = 5;
  cfg.walk_length = 4;
  auto walks = GenerateWalks(g, cfg);
  EXPECT_EQ(walks.size(), g.num_nodes() * 5);
  // x(0) and y(1) form one component; p(2), q(3) the other. No walk can
  // cross components.
  for (const auto& walk : walks) {
    bool comp0 = walk[0] <= 1;
    for (size_t node : walk) {
      EXPECT_EQ(node <= 1, comp0) << "walk crossed components";
    }
  }
}

TEST(GraphEmbeddingTest, TupleCoMembersEmbedClose) {
  // Table where attribute values always pair up: (a1,b1), (a2,b2).
  data::Table t(data::Schema::OfStrings({"A", "B"}));
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(t.AppendRow({data::Value("a1"), data::Value("b1")}).ok());
    ASSERT_TRUE(t.AppendRow({data::Value("a2"), data::Value("b2")}).ok());
  }
  data::TableGraph g = data::TableGraph::Build(t);
  GraphEmbeddingConfig cfg;
  cfg.sgns.dim = 8;
  cfg.sgns.epochs = 10;
  cfg.walks_per_node = 20;
  cfg.walk_length = 6;
  EmbeddingStore store = TrainTableGraphEmbeddings(g, t.schema(), cfg);
  double paired =
      store.Similarity("A:a1", "B:b1").ValueOrDie();
  double unpaired =
      store.Similarity("A:a1", "B:b2").ValueOrDie();
  EXPECT_GT(paired, unpaired);
}

TEST(CompositionTest, TupleEmbeddingAveragesKnownTokens) {
  EmbeddingStore words;
  ASSERT_TRUE(words.Add("red", {1.0f, 0.0f}).ok());
  ASSERT_TRUE(words.Add("apple", {0.0f, 1.0f}).ok());
  data::Row row = {data::Value("Red Apple"), data::Value::Null()};
  auto v = EmbedTuple(words, row);
  EXPECT_FLOAT_EQ(v[0], 0.5f);
  EXPECT_FLOAT_EQ(v[1], 0.5f);
}

TEST(CompositionTest, SifDownweightsFrequentTokens) {
  EmbeddingStore words;
  ASSERT_TRUE(words.Add("the", {1.0f, 0.0f}).ok());
  ASSERT_TRUE(words.Add("rare", {0.0f, 1.0f}).ok());
  text::Vocabulary vocab;
  for (int i = 0; i < 1000; ++i) vocab.Add("the");
  vocab.Add("rare");
  SifWeights sif;
  sif.vocabulary = &vocab;
  auto v = EmbedTokens(words, {"the", "rare"}, Composition::kSifWeighted,
                       sif);
  EXPECT_GT(v[1], v[0] * 10.0f) << "frequent token not downweighted";
}

TEST(CompositionTest, ColumnEmbeddingUsesNameAndValues) {
  EmbeddingStore words;
  ASSERT_TRUE(words.Add("price", {1.0f, 0.0f}).ok());
  ASSERT_TRUE(words.Add("cheap", {0.0f, 1.0f}).ok());
  data::Table t(data::Schema::OfStrings({"price"}));
  ASSERT_TRUE(t.AppendRow({data::Value("cheap")}).ok());
  auto v = EmbedColumn(words, t, 0);
  EXPECT_GT(v[0], 0.0f);
  EXPECT_GT(v[1], 0.0f);
}

TEST(CompositionTest, TableEmbeddingNonZeroForKnownVocab) {
  EmbeddingStore words;
  ASSERT_TRUE(words.Add("a", {1.0f, 1.0f}).ok());
  data::Table t(data::Schema::OfStrings({"a"}));
  ASSERT_TRUE(t.AppendRow({data::Value("a")}).ok());
  auto v = EmbedTable(words, t);
  EXPECT_GT(v[0], 0.0f);
  // Empty table embeds to zero.
  data::Table empty(data::Schema::OfStrings({"zzz"}));
  auto z = EmbedTable(words, empty);
  EXPECT_FLOAT_EQ(z[0], 0.0f);
}

TEST(Word2VecTest, NaiveCellEmbeddingsLinkCoOccurringCells) {
  // Country/Capital relation repeated: cell embeddings of a pair must be
  // closer than across pairs (the working case of the naive adaptation).
  data::Table t(data::Schema::OfStrings({"Country", "Capital"}));
  Rng rng(5);
  for (int i = 0; i < 60; ++i) {
    if (rng.Bernoulli(0.5)) {
      ASSERT_TRUE(
          t.AppendRow({data::Value("brazil"), data::Value("brasilia")}).ok());
    } else {
      ASSERT_TRUE(
          t.AppendRow({data::Value("france"), data::Value("paris")}).ok());
    }
  }
  Word2VecConfig cfg;
  cfg.sgns.dim = 12;
  cfg.sgns.epochs = 12;
  EmbeddingStore store = TrainCellEmbeddingsNaive({&t}, cfg);
  EXPECT_GT(store.Similarity("brazil", "brasilia").ValueOrDie(),
            store.Similarity("brazil", "paris").ValueOrDie());
}

}  // namespace
}  // namespace autodc::embedding
