// Tests for the text substrate: tokenization, similarity measures with
// their metric properties, vocabulary, and tf-idf.
#include <gtest/gtest.h>

#include "src/text/similarity.h"
#include "src/text/tokenizer.h"
#include "src/text/vocabulary.h"

namespace autodc::text {
namespace {

TEST(TokenizerTest, LowercasesAndSplitsOnNonAlnum) {
  EXPECT_EQ(Tokenize("J. Smith, Ph.D"),
            (std::vector<std::string>{"j", "smith", "ph", "d"}));
  EXPECT_EQ(Tokenize("iPhone 13 Pro"),
            (std::vector<std::string>{"iphone", "13", "pro"}));
  EXPECT_TRUE(Tokenize("...").empty());
  EXPECT_TRUE(Tokenize("").empty());
}

TEST(TokenizerTest, CharNgramsPadded) {
  auto grams = CharNgrams("abc", 3);
  EXPECT_EQ(grams.size(), 5u);
  EXPECT_EQ(grams.front(), "##a");
  EXPECT_EQ(grams.back(), "c##");
}

TEST(TokenizerTest, WordNgrams) {
  EXPECT_EQ(WordNgrams("new york city", 2),
            (std::vector<std::string>{"new_york", "york_city"}));
  EXPECT_TRUE(WordNgrams("one", 2).empty());
}

TEST(LevenshteinTest, KnownDistances) {
  EXPECT_EQ(LevenshteinDistance("kitten", "sitting"), 3u);
  EXPECT_EQ(LevenshteinDistance("", "abc"), 3u);
  EXPECT_EQ(LevenshteinDistance("abc", "abc"), 0u);
  EXPECT_EQ(LevenshteinDistance("abc", ""), 3u);
}

TEST(LevenshteinTest, SimilarityBounds) {
  EXPECT_DOUBLE_EQ(LevenshteinSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(LevenshteinSimilarity("abc", "abc"), 1.0);
  EXPECT_DOUBLE_EQ(LevenshteinSimilarity("abc", "xyz"), 0.0);
}

TEST(JaroTest, KnownValues) {
  EXPECT_NEAR(JaroSimilarity("MARTHA", "MARHTA"), 0.944, 1e-3);
  EXPECT_NEAR(JaroSimilarity("DWAYNE", "DUANE"), 0.822, 1e-3);
  EXPECT_DOUBLE_EQ(JaroSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(JaroSimilarity("a", ""), 0.0);
}

TEST(JaroWinklerTest, PrefixBoost) {
  double jaro = JaroSimilarity("prefixes", "prefixed");
  double jw = JaroWinklerSimilarity("prefixes", "prefixed");
  EXPECT_GT(jw, jaro);
  EXPECT_NEAR(JaroWinklerSimilarity("MARTHA", "MARHTA"), 0.961, 1e-3);
}

TEST(JaccardTest, TokenAndTrigram) {
  EXPECT_DOUBLE_EQ(TokenJaccard("red apple", "apple red"), 1.0);
  EXPECT_DOUBLE_EQ(TokenJaccard("a b", "c d"), 0.0);
  EXPECT_DOUBLE_EQ(TokenJaccard("", ""), 1.0);
  EXPECT_GT(TrigramJaccard("apple", "aple"), 0.3);
  EXPECT_LT(TrigramJaccard("apple", "zebra"), 0.2);
}

TEST(MongeElkanTest, HandlesWordReorderAndTypos) {
  // Reordered multiword names should stay highly similar.
  EXPECT_GT(MongeElkan("john smith", "smith john"), 0.9);
  EXPECT_GT(MongeElkan("jon smith", "john smith"), 0.85);
  EXPECT_LT(MongeElkan("alice wonder", "bob builder"), 0.7);
}

// Property sweep: every string similarity must be symmetric-ish (Monge-
// Elkan excluded), bounded in [0,1], and 1 on identical inputs.
class SimilarityPropertyTest
    : public ::testing::TestWithParam<const char*> {};

TEST_P(SimilarityPropertyTest, BoundedSymmetricReflexive) {
  const std::string s = GetParam();
  const std::vector<std::string> others = {"", "a", "apple pie",
                                           "Jane Doe", s};
  auto check = [&](double (*sim)(std::string_view, std::string_view)) {
    for (const std::string& o : others) {
      double ab = sim(s, o);
      double ba = sim(o, s);
      EXPECT_GE(ab, 0.0);
      EXPECT_LE(ab, 1.0);
      EXPECT_NEAR(ab, ba, 1e-12);
    }
    EXPECT_DOUBLE_EQ(sim(s, s), 1.0);
  };
  check(&LevenshteinSimilarity);
  check(&JaroSimilarity);
  check(&JaroWinklerSimilarity);
  check(&TokenJaccard);
  check(&TrigramJaccard);
}

INSTANTIATE_TEST_SUITE_P(Strings, SimilarityPropertyTest,
                         ::testing::Values("", "x", "John Smith",
                                           "3.5 GHz CPU", "aaaa",
                                           "The Quick Brown Fox"));

TEST(CosineTest, BasicProperties) {
  std::vector<double> a = {1, 0, 0};
  std::vector<double> b = {0, 1, 0};
  std::vector<double> c = {2, 0, 0};
  EXPECT_DOUBLE_EQ(CosineSimilarity(a, b), 0.0);
  EXPECT_DOUBLE_EQ(CosineSimilarity(a, c), 1.0);
  EXPECT_DOUBLE_EQ(CosineSimilarity(a, std::vector<double>{0, 0, 0}), 0.0);
  EXPECT_DOUBLE_EQ(CosineSimilarity(a, std::vector<double>{1, 1}), 0.0);
}

TEST(EuclideanTest, Distance) {
  EXPECT_DOUBLE_EQ(EuclideanDistance({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(EuclideanDistance({1, 1}, {1, 1}), 0.0);
}

TEST(VocabularyTest, IdsStableAndCountsAccumulate) {
  Vocabulary v;
  size_t a = v.Add("apple");
  size_t b = v.Add("banana");
  EXPECT_EQ(v.Add("apple"), a);
  EXPECT_NE(a, b);
  EXPECT_EQ(v.CountOf(a), 2u);
  EXPECT_EQ(v.size(), 2u);
  EXPECT_EQ(v.total_count(), 3u);
  EXPECT_EQ(v.IdOf("apple"), static_cast<int64_t>(a));
  EXPECT_EQ(v.IdOf("zzz"), -1);
  EXPECT_EQ(v.TokenOf(b), "banana");
}

TEST(VocabularyTest, UnigramWeightsPower) {
  Vocabulary v;
  v.Add("x");
  v.Add("y");
  v.Add("y");
  v.Add("y");
  v.Add("y");  // y count 4
  auto w = v.UnigramWeights(0.5);
  EXPECT_DOUBLE_EQ(w[0], 1.0);
  EXPECT_DOUBLE_EQ(w[1], 2.0);
}

TEST(VocabularyTest, PruneRareRemapsIds) {
  Vocabulary v;
  v.Add("rare");
  v.Add("common");
  v.Add("common");
  auto remap = v.PruneRare(2);
  EXPECT_EQ(remap[0], -1);
  EXPECT_EQ(remap[1], 0);
  EXPECT_EQ(v.size(), 1u);
  EXPECT_EQ(v.IdOf("rare"), -1);
  EXPECT_EQ(v.IdOf("common"), 0);
  EXPECT_EQ(v.total_count(), 2u);
}

TEST(TfIdfTest, RareTermsWeighHigher) {
  TfIdf tfidf;
  tfidf.Fit({{"the", "cat"}, {"the", "dog"}, {"the", "fish"}});
  auto v = tfidf.Transform({"the", "cat"});
  int64_t the_id = tfidf.vocabulary().IdOf("the");
  int64_t cat_id = tfidf.vocabulary().IdOf("cat");
  ASSERT_GE(the_id, 0);
  ASSERT_GE(cat_id, 0);
  EXPECT_GT(v[static_cast<size_t>(cat_id)], v[static_cast<size_t>(the_id)]);
}

TEST(TfIdfTest, OovTokensDropped) {
  TfIdf tfidf;
  tfidf.Fit({{"a"}});
  auto v = tfidf.Transform({"unknown"});
  EXPECT_TRUE(v.empty());
}

TEST(TfIdfTest, SparseCosine) {
  std::unordered_map<size_t, double> a = {{0, 1.0}, {1, 2.0}};
  std::unordered_map<size_t, double> b = {{1, 2.0}, {2, 5.0}};
  double sim = TfIdf::SparseCosine(a, b);
  EXPECT_GT(sim, 0.0);
  EXPECT_LT(sim, 1.0);
  EXPECT_DOUBLE_EQ(TfIdf::SparseCosine(a, a), 1.0);
  EXPECT_DOUBLE_EQ(TfIdf::SparseCosine(a, {}), 0.0);
}

}  // namespace
}  // namespace autodc::text
