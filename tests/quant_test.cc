// Tests for the low-precision fast path (DESIGN.md §11): int8/bf16
// kernel agreement across dispatch paths (int8 is bit-exact, bf16 holds
// the normal float tolerance), quantize/dequantize round-trip error
// bounds, degenerate inputs, the quantized Gemm panel, quantized HNSW
// recall, and the quantized EmbeddingStore (rescoring contract, Find
// cache stability, resident-bytes ratio, concurrent reads for the TSan
// leg — `ctest -L quant`).
#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/ann/hnsw.h"
#include "src/common/rng.h"
#include "src/embedding/embedding_store.h"
#include "src/nn/kernels.h"

namespace autodc {
namespace {

namespace k = nn::kernels;
using k::Int8Params;
using k::Quant;
using k::SetForceScalar;
using k::SimdActive;

// Tolerance policy from DESIGN.md: relative 1e-5 with an absolute floor
// of 1e-5 (for the float-accumulating bf16 kernels; the int8 kernels
// are exact and use EXPECT_EQ).
void ExpectClose(double a, double b, const char* what, size_t n) {
  double tol = 1e-5 * std::max({1.0, std::fabs(a), std::fabs(b)});
  EXPECT_NEAR(a, b, tol) << what << " n=" << n;
}

std::vector<float> RandomVec(size_t n, Rng* rng, double lo = -2.0,
                             double hi = 2.0) {
  std::vector<float> v(n);
  for (float& x : v) x = static_cast<float>(rng->Uniform(lo, hi));
  return v;
}

// Sizes covering every AVX2 remainder-lane count for both the 8-wide
// float path and the 32-wide int8 path.
const size_t kSizes[] = {1,  2,  3,  4,  5,  6,  7,  8,  9,  10, 11,
                         12, 13, 14, 15, 16, 31, 32, 33, 63, 64, 100,
                         127, 128, 200, 256};

// Restores the dispatch default after each test so a failure cannot
// leak forced-scalar mode into the rest of the binary.
class QuantKernelsTest : public ::testing::Test {
 protected:
  void TearDown() override { SetForceScalar(false); }
};

// ---- int8: scalar vs SIMD must agree BIT-FOR-BIT ----------------------
// Integer accumulation is associative, both quantizers share the same
// round-to-nearest-even contract, and the dequant algebra is one shared
// inline — so unlike the float kernels there is no tolerance here.

TEST_F(QuantKernelsTest, Int8KernelsBitIdenticalAcrossPaths) {
  if (!SimdActive()) GTEST_SKIP() << "no SIMD path on this host";
  Rng rng(7);
  for (bool symmetric : {false, true}) {
    for (size_t n : kSizes) {
      std::vector<float> a = RandomVec(n, &rng);
      std::vector<float> b = RandomVec(n, &rng, -0.5, 3.0);  // asymmetric range
      Int8Params pa = k::ComputeInt8Params(a.data(), n, symmetric);
      Int8Params pb = k::ComputeInt8Params(b.data(), n, symmetric);

      SetForceScalar(true);
      std::vector<std::int8_t> qa_s(n), qb_s(n);
      k::QuantizeI8F32(a.data(), n, pa, qa_s.data());
      k::QuantizeI8F32(b.data(), n, pb, qb_s.data());
      std::int32_t dot_s = k::DotI8I32(qa_s.data(), qb_s.data(), n);
      std::int32_t sum_s = k::SumI8I32(qa_s.data(), n);
      double cos_s = k::CosineI8(qa_s.data(), pa, qb_s.data(), pb, n);
      double sq_s = k::SqDistI8(qa_s.data(), pa, qb_s.data(), pb, n);
      std::vector<float> da_s(n);
      k::DequantizeI8F32(qa_s.data(), n, pa, da_s.data());

      SetForceScalar(false);
      std::vector<std::int8_t> qa_v(n), qb_v(n);
      k::QuantizeI8F32(a.data(), n, pa, qa_v.data());
      k::QuantizeI8F32(b.data(), n, pb, qb_v.data());
      EXPECT_EQ(qa_s, qa_v) << "quantize n=" << n << " sym=" << symmetric;
      EXPECT_EQ(qb_s, qb_v) << "quantize n=" << n << " sym=" << symmetric;
      EXPECT_EQ(dot_s, k::DotI8I32(qa_v.data(), qb_v.data(), n)) << n;
      EXPECT_EQ(sum_s, k::SumI8I32(qa_v.data(), n)) << n;
      EXPECT_EQ(cos_s, k::CosineI8(qa_v.data(), pa, qb_v.data(), pb, n)) << n;
      EXPECT_EQ(sq_s, k::SqDistI8(qa_v.data(), pa, qb_v.data(), pb, n)) << n;
      std::vector<float> da_v(n);
      k::DequantizeI8F32(qa_v.data(), n, pa, da_v.data());
      EXPECT_EQ(da_s, da_v) << "dequantize n=" << n;
    }
  }
}

TEST_F(QuantKernelsTest, QuantizedValuesStayWithinPlusMinus127) {
  // The ±127 clamp (never −128) is the invariant that keeps the AVX2
  // maddubs pair-sums below i16 saturation, making integer dots exact.
  Rng rng(11);
  for (size_t n : kSizes) {
    std::vector<float> a = RandomVec(n, &rng, -100.0, 100.0);
    for (bool symmetric : {false, true}) {
      Int8Params p = k::ComputeInt8Params(a.data(), n, symmetric);
      std::vector<std::int8_t> q(n);
      k::QuantizeI8F32(a.data(), n, p, q.data());
      for (std::int8_t v : q) {
        EXPECT_GE(v, -127);
        EXPECT_LE(v, 127);
      }
    }
  }
}

// ---- Round-trip error bound (property test) ---------------------------

TEST_F(QuantKernelsTest, Int8RoundTripErrorBounded) {
  Rng rng(13);
  for (int trial = 0; trial < 50; ++trial) {
    size_t n = static_cast<size_t>(rng.UniformInt(1, 300));
    double lo = rng.Uniform(-10.0, 0.0);
    double hi = rng.Uniform(0.0, 10.0);
    std::vector<float> x = RandomVec(n, &rng, lo, hi);
    for (bool symmetric : {false, true}) {
      Int8Params p = k::ComputeInt8Params(x.data(), n, symmetric);
      std::vector<std::int8_t> q(n);
      std::vector<float> y(n);
      k::QuantizeI8F32(x.data(), n, p, q.data());
      k::DequantizeI8F32(q.data(), n, p, y.data());
      // Values inside the represented range round to the nearest grid
      // point: error ≤ scale/2 (+ float slack). The asymmetric grid is
      // anchored so min/max land on it; clamping can cost up to one
      // extra step at the extremes, hence the 1.51 headroom.
      double bound = 1.51 * p.scale + 1e-6;
      for (size_t i = 0; i < n; ++i) {
        EXPECT_LE(std::fabs(static_cast<double>(x[i]) - y[i]), bound)
            << "i=" << i << " n=" << n << " sym=" << symmetric;
      }
    }
  }
}

TEST_F(QuantKernelsTest, Bf16RoundTripRelativeErrorBounded) {
  Rng rng(17);
  std::vector<float> x = RandomVec(512, &rng, -1000.0, 1000.0);
  std::vector<std::uint16_t> h(x.size());
  std::vector<float> y(x.size());
  k::F32ToBf16(x.data(), x.size(), h.data());
  k::Bf16ToF32(h.data(), h.size(), y.data());
  for (size_t i = 0; i < x.size(); ++i) {
    // bf16 keeps 8 mantissa bits: RNE error ≤ 2^-9 relative.
    EXPECT_LE(std::fabs(x[i] - y[i]), std::fabs(x[i]) * 0x1p-8 + 1e-30)
        << i;
  }
}

TEST_F(QuantKernelsTest, Bf16ConversionBitIdenticalAcrossPaths) {
  if (!SimdActive()) GTEST_SKIP() << "no SIMD path on this host";
  Rng rng(19);
  for (size_t n : kSizes) {
    std::vector<float> x = RandomVec(n, &rng, -50.0, 50.0);
    if (n > 2) {
      x[0] = std::numeric_limits<float>::quiet_NaN();
      x[1] = std::numeric_limits<float>::infinity();
      x[2] = -0.0f;
    }
    SetForceScalar(true);
    std::vector<std::uint16_t> h_s(n);
    k::F32ToBf16(x.data(), n, h_s.data());
    SetForceScalar(false);
    std::vector<std::uint16_t> h_v(n);
    k::F32ToBf16(x.data(), n, h_v.data());
    EXPECT_EQ(h_s, h_v) << "f32->bf16 n=" << n;
    std::vector<float> back(n);
    k::Bf16ToF32(h_s.data(), n, back.data());
    if (n > 2) {
      EXPECT_TRUE(std::isnan(back[0]));  // NaN never rounds to inf
      EXPECT_TRUE(std::isinf(back[1]));
    }
  }
}

TEST_F(QuantKernelsTest, Bf16DotCosineSqDistAgreeAcrossPaths) {
  if (!SimdActive()) GTEST_SKIP() << "no SIMD path on this host";
  Rng rng(23);
  for (size_t n : kSizes) {
    std::vector<float> a = RandomVec(n, &rng);
    std::vector<float> b = RandomVec(n, &rng);
    std::vector<std::uint16_t> ha(n), hb(n);
    k::F32ToBf16(a.data(), n, ha.data());
    k::F32ToBf16(b.data(), n, hb.data());
    SetForceScalar(true);
    double dot_s = k::DotBf16D(ha.data(), hb.data(), n);
    double cos_s = k::CosineBf16(ha.data(), hb.data(), n);
    double sq_s = k::SqDistBf16(ha.data(), hb.data(), n);
    SetForceScalar(false);
    ExpectClose(dot_s, k::DotBf16D(ha.data(), hb.data(), n), "bf16 dot", n);
    ExpectClose(cos_s, k::CosineBf16(ha.data(), hb.data(), n), "bf16 cos", n);
    ExpectClose(sq_s, k::SqDistBf16(ha.data(), hb.data(), n), "bf16 sq", n);
  }
}

// ---- Degenerate inputs ------------------------------------------------

TEST_F(QuantKernelsTest, ZeroAndConstantRowsDegradeGracefully) {
  for (bool symmetric : {false, true}) {
    std::vector<float> zero(16, 0.0f);
    Int8Params pz = k::ComputeInt8Params(zero.data(), zero.size(), symmetric);
    EXPECT_GT(pz.scale, 0.0f);  // never a divide-by-zero scale
    std::vector<std::int8_t> qz(zero.size());
    k::QuantizeI8F32(zero.data(), zero.size(), pz, qz.data());
    EXPECT_EQ(k::CosineI8(qz.data(), pz, qz.data(), pz, zero.size()), 0.0);
    EXPECT_EQ(k::SqDistI8(qz.data(), pz, qz.data(), pz, zero.size()), 0.0);

    // A constant row quantizes exactly: min and max sit on the grid.
    std::vector<float> c(16, 3.25f);
    Int8Params pc = k::ComputeInt8Params(c.data(), c.size(), symmetric);
    std::vector<std::int8_t> qc(c.size());
    std::vector<float> back(c.size());
    k::QuantizeI8F32(c.data(), c.size(), pc, qc.data());
    k::DequantizeI8F32(qc.data(), c.size(), pc, back.data());
    for (float v : back) EXPECT_NEAR(v, 3.25f, 3.25f * 1e-5f);
    EXPECT_NEAR(k::CosineI8(qc.data(), pc, qc.data(), pc, c.size()), 1.0,
                1e-9);
  }
  // n == 0 must not touch memory.
  Int8Params p0 = k::ComputeInt8Params(nullptr, 0, false);
  EXPECT_EQ(p0.zero_point, 0);
  EXPECT_EQ(k::DotI8I32(nullptr, nullptr, 0), 0);
  EXPECT_EQ(k::SumI8I32(nullptr, 0), 0);
}

// ---- Quantized Gemm panel ---------------------------------------------

TEST_F(QuantKernelsTest, GemmI8PanelMatchesReferenceAndIsBitIdentical) {
  Rng rng(29);
  const size_t nrows = 7, krows = 5, m = 37;
  std::vector<std::int8_t> a(nrows * m), b(krows * m);
  std::vector<Int8Params> pa(nrows), pb(krows);
  std::vector<std::int32_t> sa(nrows), sb(krows);
  auto fill = [&](std::vector<std::int8_t>* q, std::vector<Int8Params>* p,
                  std::vector<std::int32_t>* s, size_t rows) {
    for (size_t r = 0; r < rows; ++r) {
      std::vector<float> v = RandomVec(m, &rng);
      (*p)[r] = k::ComputeInt8Params(v.data(), m, false);
      k::QuantizeI8F32(v.data(), m, (*p)[r], q->data() + r * m);
      (*s)[r] = k::SumI8I32(q->data() + r * m, m);
    }
  };
  fill(&a, &pa, &sa, nrows);
  fill(&b, &pb, &sb, krows);

  std::vector<float> c(nrows * krows, -1.0f);
  k::GemmI8TransBPanelF32(a.data(), pa.data(), sa.data(), b.data(),
                          pb.data(), sb.data(), c.data(), 0, nrows, m,
                          krows);
  for (size_t r = 0; r < nrows; ++r) {
    for (size_t j = 0; j < krows; ++j) {
      std::int32_t idot = k::DotI8I32(a.data() + r * m, b.data() + j * m, m);
      float want = static_cast<float>(
          k::DequantDotD(idot, pa[r], sa[r], pb[j], sb[j], m));
      EXPECT_EQ(c[r * krows + j], want) << r << "," << j;
    }
  }
  if (SimdActive()) {
    SetForceScalar(true);
    std::vector<float> c_s(nrows * krows, -2.0f);
    k::GemmI8TransBPanelF32(a.data(), pa.data(), sa.data(), b.data(),
                            pb.data(), sb.data(), c_s.data(), 0, nrows, m,
                            krows);
    SetForceScalar(false);
    EXPECT_EQ(c, c_s);  // exact integer dots -> bit-identical panels
  }
  // Partial panel [2, 4) leaves other rows untouched.
  std::vector<float> part(nrows * krows, 9.0f);
  k::GemmI8TransBPanelF32(a.data(), pa.data(), sa.data(), b.data(),
                          pb.data(), sb.data(), part.data(), 2, 4, m, krows);
  EXPECT_EQ(part[0], 9.0f);
  EXPECT_EQ(part[2 * krows], c[2 * krows]);
}

// ---- Parsing & env knobs ----------------------------------------------

TEST(QuantConfigTest, ParseQuantRecognizesModes) {
  EXPECT_EQ(k::ParseQuant("int8"), Quant::kInt8);
  EXPECT_EQ(k::ParseQuant("INT8"), Quant::kInt8);
  EXPECT_EQ(k::ParseQuant("int8sym"), Quant::kInt8Sym);
  EXPECT_EQ(k::ParseQuant("bf16"), Quant::kBf16);
  EXPECT_EQ(k::ParseQuant("BF16"), Quant::kBf16);
  EXPECT_EQ(k::ParseQuant(""), Quant::kFp32);
  EXPECT_EQ(k::ParseQuant("fp32"), Quant::kFp32);
  EXPECT_EQ(k::ParseQuant("garbage"), Quant::kFp32);
  EXPECT_EQ(k::ParseQuant(nullptr), Quant::kFp32);
}

TEST(QuantConfigTest, AnnEnvKnobsParseAndClamp) {
  ann::HnswConfig defaults;
  setenv("AUTODC_ANN_M", "24", 1);
  setenv("AUTODC_ANN_EF_CONSTRUCTION", "123", 1);
  setenv("AUTODC_ANN_EF_SEARCH", "77", 1);
  setenv("AUTODC_EMB_QUANT", "int8", 1);
  ann::HnswConfig cfg = ann::ConfigFromEnv();
  EXPECT_EQ(cfg.M, 24u);
  EXPECT_EQ(cfg.ef_construction, 123u);
  EXPECT_EQ(cfg.ef_search, 77u);
  EXPECT_EQ(cfg.quant, Quant::kInt8);
  // Out-of-range values fall back to the defaults (the env.h contract:
  // a warning, never a wedged graph).
  setenv("AUTODC_ANN_M", "1", 1);        // below the min of 2
  setenv("AUTODC_ANN_EF_SEARCH", "0", 1);  // below the min of 1
  cfg = ann::ConfigFromEnv();
  EXPECT_EQ(cfg.M, defaults.M);
  EXPECT_EQ(cfg.ef_search, defaults.ef_search);
  unsetenv("AUTODC_ANN_M");
  unsetenv("AUTODC_ANN_EF_CONSTRUCTION");
  unsetenv("AUTODC_ANN_EF_SEARCH");
  unsetenv("AUTODC_EMB_QUANT");
  cfg = ann::ConfigFromEnv();
  EXPECT_EQ(cfg.M, defaults.M);
  EXPECT_EQ(cfg.quant, Quant::kFp32);
}

// ---- Quantized HNSW ---------------------------------------------------

std::vector<std::vector<float>> ClusteredVectors(size_t n, size_t dim,
                                                 size_t clusters,
                                                 uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<float>> centers(clusters);
  for (auto& c : centers) {
    c.resize(dim);
    for (float& x : c) x = static_cast<float>(rng.Normal());
  }
  std::vector<std::vector<float>> out(n);
  for (auto& v : out) {
    const std::vector<float>& c =
        centers[static_cast<size_t>(rng.UniformInt(0, clusters - 1))];
    v.resize(dim);
    for (size_t d = 0; d < dim; ++d) {
      v[d] = c[d] + static_cast<float>(rng.Normal(0.0, 0.3));
    }
  }
  return out;
}

std::vector<size_t> ExactTopK(const float* q,
                              const std::vector<std::vector<float>>& data,
                              size_t k) {
  std::vector<std::pair<double, size_t>> scored;
  for (size_t i = 0; i < data.size(); ++i) {
    scored.emplace_back(
        k::CosineF32(q, data[i].data(), data[i].size()), i);
  }
  size_t take = std::min(k, scored.size());
  std::partial_sort(scored.begin(), scored.begin() + take, scored.end(),
                    [](const auto& a, const auto& b) {
                      return a.first > b.first ||
                             (a.first == b.first && a.second < b.second);
                    });
  std::vector<size_t> out;
  for (size_t i = 0; i < take; ++i) out.push_back(scored[i].second);
  return out;
}

double QuantIndexRecallAt10(Quant quant) {
  const size_t n = 600, dim = 32, kk = 10;
  auto data = ClusteredVectors(n, dim, 12, 123);
  ann::HnswConfig cfg;
  cfg.quant = quant;
  ann::HnswIndex index(dim, cfg);
  std::vector<const float*> rows;
  for (const auto& v : data) rows.push_back(v.data());
  index.Build(rows);
  size_t hit = 0, total = 0;
  for (size_t q = 0; q < 40; ++q) {
    auto exact = ExactTopK(data[q * 7].data(), data, kk);
    std::set<size_t> want(exact.begin(), exact.end());
    for (const ann::ScoredId& s : index.Search(data[q * 7].data(), kk)) {
      hit += want.count(s.id);
    }
    total += kk;
  }
  return static_cast<double>(hit) / static_cast<double>(total);
}

TEST(QuantHnswTest, Int8IndexRecallStaysHigh) {
  EXPECT_GE(QuantIndexRecallAt10(Quant::kInt8), 0.9);
}

TEST(QuantHnswTest, Bf16IndexRecallStaysHigh) {
  EXPECT_GE(QuantIndexRecallAt10(Quant::kBf16), 0.9);
}

TEST(QuantHnswTest, QuantizedBuildIsDeterministic) {
  const size_t n = 300, dim = 16;
  auto data = ClusteredVectors(n, dim, 8, 321);
  std::vector<const float*> rows;
  for (const auto& v : data) rows.push_back(v.data());
  ann::HnswConfig cfg;
  cfg.quant = Quant::kInt8;
  ann::HnswIndex a(dim, cfg), b(dim, cfg);
  a.Build(rows);
  b.Build(rows);
  for (size_t q = 0; q < 10; ++q) {
    auto ra = a.Search(data[q].data(), 5);
    auto rb = b.Search(data[q].data(), 5);
    ASSERT_EQ(ra.size(), rb.size());
    for (size_t i = 0; i < ra.size(); ++i) {
      EXPECT_EQ(ra[i].id, rb[i].id);
      EXPECT_EQ(ra[i].similarity, rb[i].similarity);
    }
  }
  EXPECT_GT(a.resident_bytes(), 0u);
}

TEST(QuantHnswTest, Int8IndexResidentBytesWellBelowFp32) {
  const size_t n = 500, dim = 64;
  auto data = ClusteredVectors(n, dim, 8, 99);
  std::vector<const float*> rows;
  for (const auto& v : data) rows.push_back(v.data());
  ann::HnswConfig f32cfg;
  ann::HnswConfig i8cfg;
  i8cfg.quant = Quant::kInt8;
  ann::HnswIndex f32(dim, f32cfg), i8(dim, i8cfg);
  f32.Build(rows);
  i8.Build(rows);
  // Row storage shrinks 4x; the graph structure is shared overhead, so
  // gate the whole-index ratio loosely.
  EXPECT_LT(static_cast<double>(i8.resident_bytes()),
            0.75 * static_cast<double>(f32.resident_bytes()));
}

// ---- Quantized EmbeddingStore -----------------------------------------

embedding::EmbeddingStore MakeStore(Quant quant, size_t n, size_t dim,
                                    uint64_t seed) {
  embedding::EmbeddingStore store(dim, quant);
  auto data = ClusteredVectors(n, dim, 10, seed);
  for (size_t i = 0; i < n; ++i) {
    EXPECT_TRUE(store.Add("k" + std::to_string(i), data[i]).ok());
  }
  return store;
}

TEST(QuantStoreTest, QuantizedNearestTracksFp32) {
  const size_t n = 400, dim = 24;
  auto data = ClusteredVectors(n, dim, 10, 55);
  embedding::EmbeddingStore f32(dim, Quant::kFp32);
  embedding::EmbeddingStore i8(dim, Quant::kInt8);
  embedding::EmbeddingStore bf16(dim, Quant::kBf16);
  for (size_t i = 0; i < n; ++i) {
    std::string key = "k" + std::to_string(i);
    ASSERT_TRUE(f32.Add(key, data[i]).ok());
    ASSERT_TRUE(i8.Add(key, data[i]).ok());
    ASSERT_TRUE(bf16.Add(key, data[i]).ok());
  }
  size_t agree_i8 = 0, agree_bf16 = 0;
  const size_t queries = 25;
  for (size_t q = 0; q < queries; ++q) {
    auto want = f32.NearestToVector(data[q * 3], 5);
    auto got_i8 = i8.NearestToVector(data[q * 3], 5);
    auto got_bf16 = bf16.NearestToVector(data[q * 3], 5);
    ASSERT_EQ(want.size(), got_i8.size());
    agree_i8 += want[0].key == got_i8[0].key;
    agree_bf16 += want[0].key == got_bf16[0].key;
    // Rescoring contract: similarities come from the fp32 formula over
    // the dequantized row, so they sit within quantization error of the
    // fp32 store's value for the same key.
    for (size_t i = 0; i < want.size(); ++i) {
      EXPECT_NEAR(want[i].similarity, got_i8[i].similarity, 0.05);
      EXPECT_NEAR(want[i].similarity, got_bf16[i].similarity, 0.02);
    }
  }
  EXPECT_GE(agree_i8, queries - 2);
  EXPECT_GE(agree_bf16, queries - 1);
}

TEST(QuantStoreTest, FindDequantizesAndPointersStayStableAcrossOverwrite) {
  embedding::EmbeddingStore store(4, Quant::kInt8);
  ASSERT_TRUE(store.Add("a", {1.0f, -2.0f, 3.0f, -4.0f}).ok());
  const std::vector<float>* row = store.Find("a");
  ASSERT_NE(row, nullptr);
  ASSERT_EQ(row->size(), 4u);
  EXPECT_NEAR((*row)[0], 1.0f, 0.05f);
  EXPECT_NEAR((*row)[3], -4.0f, 0.05f);
  EXPECT_EQ(store.Find("a"), row);  // cached: same pointer
  // Grow the store (rehashes the cache's table) and overwrite the key:
  // the held pointer stays valid and tracks the new value.
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(
        store.Add("p" + std::to_string(i), {0.1f, 0.2f, 0.3f, 0.4f}).ok());
    (void)store.Find("p" + std::to_string(i));
  }
  ASSERT_TRUE(store.Add("a", {10.0f, 20.0f, 30.0f, 40.0f}).ok());
  EXPECT_NEAR((*row)[0], 10.0f, 0.5f);
  EXPECT_NEAR((*row)[3], 40.0f, 0.5f);
  EXPECT_EQ(store.Find("a"), row);
  EXPECT_EQ(store.Find("missing"), nullptr);
}

TEST(QuantStoreTest, ResidentBytesShrinkAsAdvertised) {
  const size_t n = 256, dim = 64;
  auto f32 = MakeStore(Quant::kFp32, n, dim, 77);
  auto i8 = MakeStore(Quant::kInt8, n, dim, 77);
  auto bf16 = MakeStore(Quant::kBf16, n, dim, 77);
  // int8 rows are 1/4 the bytes (+ params/sums), bf16 rows 1/2; the
  // fp32 store additionally pays per-row vector headers, so the ratios
  // have headroom.
  EXPECT_LT(static_cast<double>(i8.ResidentBytes()),
            0.5 * static_cast<double>(f32.ResidentBytes()));
  EXPECT_LT(static_cast<double>(bf16.ResidentBytes()),
            0.65 * static_cast<double>(f32.ResidentBytes()));
  EXPECT_GT(i8.ResidentBytes(), n * dim);  // sanity: not underreporting
}

TEST(QuantStoreTest, SimilarityAnalogyAverageWorkQuantized) {
  for (Quant quant : {Quant::kInt8, Quant::kInt8Sym, Quant::kBf16}) {
    embedding::EmbeddingStore store(4, quant);
    ASSERT_TRUE(store.Add("x", {1.0f, 0.0f, 0.5f, -0.25f}).ok());
    ASSERT_TRUE(store.Add("y", {1.0f, 0.0f, 0.5f, -0.25f}).ok());
    ASSERT_TRUE(store.Add("z", {-1.0f, 0.0f, -0.5f, 0.25f}).ok());
    auto self = store.Similarity("x", "y");
    ASSERT_TRUE(self.ok());
    EXPECT_NEAR(self.ValueOrDie(), 1.0, 0.01);
    auto anti = store.Similarity("x", "z");
    ASSERT_TRUE(anti.ok());
    EXPECT_NEAR(anti.ValueOrDie(), -1.0, 0.01);
    EXPECT_FALSE(store.Similarity("x", "missing").ok());

    auto analogy = store.Analogy("x", "y", "z", 1);
    ASSERT_TRUE(analogy.ok());  // x:y :: z:? — z maps to itself's twin
    auto avg = store.AverageOf({"x", "z", "missing"});
    ASSERT_EQ(avg.size(), 4u);
    EXPECT_NEAR(avg[0], 0.0f, 0.02f);  // x and z cancel

    auto nearest = store.Nearest("x", 1);
    ASSERT_TRUE(nearest.ok());
    EXPECT_EQ(nearest.ValueOrDie()[0].key, "y");
  }
}

TEST(QuantStoreTest, CenterAndNormalizeRequantizes) {
  const size_t n = 50, dim = 16;
  auto store = MakeStore(Quant::kInt8, n, dim, 31);
  const std::vector<float>* row = store.Find("k0");
  ASSERT_NE(row, nullptr);
  store.CenterAndNormalize();
  // Rows are unit-norm after centering (up to quantization error), and
  // cached Find pointers track the new geometry.
  double norm = 0.0;
  for (float v : *row) norm += static_cast<double>(v) * v;
  EXPECT_NEAR(std::sqrt(norm), 1.0, 0.02);
}

TEST(QuantStoreTest, AnnPathMatchesExactTopHitQuantized) {
  const size_t n = 500, dim = 24;
  auto store = MakeStore(Quant::kInt8, n, dim, 91);
  auto data = ClusteredVectors(8, dim, 4, 1234);  // fresh queries
  std::vector<std::vector<embedding::Neighbor>> exact;
  for (const auto& q : data) exact.push_back(store.NearestToVector(q, 5));
  ASSERT_TRUE(store.EnableAnn().ok());
  EXPECT_TRUE(store.AnnActive());
  size_t agree = 0;
  for (size_t i = 0; i < data.size(); ++i) {
    auto ann = store.NearestToVector(data[i], 5);
    ASSERT_FALSE(ann.empty());
    agree += ann[0].key == exact[i][0].key;
    // Both paths rescore in fp32, so when they return the same key the
    // similarity matches bit-for-bit.
    if (ann[0].key == exact[i][0].key) {
      EXPECT_EQ(ann[0].similarity, exact[i][0].similarity);
    }
  }
  EXPECT_GE(agree, data.size() - 1);
}

TEST(QuantStoreTest, ConcurrentFindAndSearchAreRaceFree) {
  // The TSan half of the quant label: many threads hammer the dequant
  // cache (insert + lookup) while others run quantized searches.
  const size_t n = 300, dim = 16;
  auto store = MakeStore(Quant::kInt8, n, dim, 13);
  ASSERT_TRUE(store.EnableAnn().ok());
  auto queries = ClusteredVectors(8, dim, 4, 7);
  std::atomic<int> bad{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 200; ++i) {
        const std::vector<float>* row =
            store.Find("k" + std::to_string((t * 37 + i) % n));
        if (row == nullptr || row->size() != dim) bad.fetch_add(1);
      }
    });
    threads.emplace_back([&, t] {
      for (int i = 0; i < 40; ++i) {
        auto hits = store.NearestToVector(queries[(t + i) % queries.size()], 3);
        if (hits.size() != 3) bad.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(bad.load(), 0);
}

TEST(QuantStoreTest, CopyAndMovePreserveQuantizedContents) {
  auto store = MakeStore(Quant::kBf16, 20, 8, 44);
  embedding::EmbeddingStore copy(store);
  EXPECT_EQ(copy.quant(), Quant::kBf16);
  EXPECT_EQ(copy.size(), store.size());
  auto a = store.Similarity("k0", "k1");
  auto b = copy.Similarity("k0", "k1");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.ValueOrDie(), b.ValueOrDie());
  embedding::EmbeddingStore moved(std::move(copy));
  auto c = moved.Similarity("k0", "k1");
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(a.ValueOrDie(), c.ValueOrDie());
}

}  // namespace
}  // namespace autodc
