// Tests for weak supervision: the label model recovers per-LF accuracy
// and beats majority vote when LF quality is skewed (the Snorkel claim),
// plus ER training-pair augmentation.
#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/weak/augment.h"
#include "src/weak/labeling.h"

namespace autodc::weak {
namespace {

// Synthetic weak-supervision world: true labels drawn with prior p1;
// each LF votes with its own accuracy and abstains with its own rate.
struct World {
  std::vector<int> truth;
  std::vector<std::vector<int>> votes;
};

World MakeWorld(size_t n, const std::vector<double>& accuracies,
                const std::vector<double>& abstain_rates, double prior,
                uint64_t seed) {
  Rng rng(seed);
  World w;
  w.truth.resize(n);
  w.votes.assign(n, std::vector<int>(accuracies.size(), kAbstain));
  for (size_t i = 0; i < n; ++i) {
    int y = rng.Bernoulli(prior) ? 1 : 0;
    w.truth[i] = y;
    for (size_t j = 0; j < accuracies.size(); ++j) {
      if (rng.Bernoulli(abstain_rates[j])) continue;
      bool correct = rng.Bernoulli(accuracies[j]);
      w.votes[i][j] = correct ? y : 1 - y;
    }
  }
  return w;
}

double Accuracy(const std::vector<double>& probs,
                const std::vector<int>& truth) {
  size_t hit = 0;
  for (size_t i = 0; i < probs.size(); ++i) {
    if ((probs[i] >= 0.5 ? 1 : 0) == truth[i]) ++hit;
  }
  return static_cast<double>(hit) / static_cast<double>(probs.size());
}

TEST(LabelingTest, ApplyFunctionsBuildsVoteMatrix) {
  std::vector<LabelingFunction> lfs = {
      {"always1", [](size_t) { return 1; }},
      {"even0", [](size_t i) { return i % 2 == 0 ? 0 : kAbstain; }},
  };
  auto votes = ApplyLabelingFunctions(lfs, 4);
  ASSERT_EQ(votes.size(), 4u);
  EXPECT_EQ(votes[0][0], 1);
  EXPECT_EQ(votes[0][1], 0);
  EXPECT_EQ(votes[1][1], kAbstain);
}

TEST(LabelingTest, MajorityVoteBasics) {
  std::vector<std::vector<int>> votes = {
      {1, 1, 0}, {kAbstain, kAbstain, kAbstain}, {0, kAbstain, 0}};
  auto probs = MajorityVote(votes);
  EXPECT_NEAR(probs[0], 2.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(probs[1], 0.5);
  EXPECT_DOUBLE_EQ(probs[2], 0.0);
}

TEST(LabelModelTest, RecoversLfAccuracies) {
  World w = MakeWorld(3000, {0.9, 0.6, 0.75}, {0.1, 0.1, 0.1}, 0.5, 1);
  LabelModel model;
  model.FitPredict(w.votes);
  const auto& acc = model.accuracies();
  ASSERT_EQ(acc.size(), 3u);
  EXPECT_NEAR(acc[0], 0.9, 0.07);
  EXPECT_NEAR(acc[1], 0.6, 0.1);
  EXPECT_NEAR(acc[2], 0.75, 0.08);
  // Ordering is what matters downstream.
  EXPECT_GT(acc[0], acc[2]);
  EXPECT_GT(acc[2], acc[1]);
}

TEST(LabelModelTest, BeatsMajorityVoteWithSkewedLfQuality) {
  // One excellent LF drowned out by three mediocre ones: majority vote
  // weights them equally; the label model learns to trust the good one.
  World w = MakeWorld(4000, {0.95, 0.55, 0.55, 0.55},
                      {0.05, 0.05, 0.05, 0.05}, 0.5, 2);
  double mv = Accuracy(MajorityVote(w.votes), w.truth);
  LabelModel model;
  double lm = Accuracy(model.FitPredict(w.votes), w.truth);
  EXPECT_GT(lm, mv + 0.03) << "label model " << lm << " vs majority " << mv;
  EXPECT_GT(lm, 0.85);
}

TEST(LabelModelTest, HandlesHeavyAbstention) {
  World w = MakeWorld(2000, {0.85, 0.85}, {0.7, 0.7}, 0.5, 3);
  LabelModel model;
  auto probs = model.FitPredict(w.votes);
  // Items with zero votes must sit at the learned prior (~0.5), not 0/1.
  for (size_t i = 0; i < w.votes.size(); ++i) {
    if (w.votes[i][0] == kAbstain && w.votes[i][1] == kAbstain) {
      EXPECT_GT(probs[i], 0.2);
      EXPECT_LT(probs[i], 0.8);
    }
  }
}

TEST(LabelModelTest, EstimatesClassPrior) {
  World w = MakeWorld(3000, {0.9, 0.9}, {0.0, 0.0}, 0.2, 4);
  LabelModel model;
  model.FitPredict(w.votes);
  EXPECT_NEAR(model.prior(), 0.2, 0.08);
}

TEST(LabelModelTest, EmptyVotesSafe) {
  LabelModel model;
  auto probs = model.FitPredict({});
  EXPECT_TRUE(probs.empty());
}

TEST(AugmentTest, PositivesSpawnLabelPreservingCopies) {
  data::Table left(data::Schema::OfStrings({"name"}), "l");
  data::Table right(data::Schema::OfStrings({"name"}), "r");
  ASSERT_TRUE(left.AppendRow({data::Value("john smith")}).ok());
  ASSERT_TRUE(right.AppendRow({data::Value("john smith")}).ok());
  ASSERT_TRUE(right.AppendRow({data::Value("someone else")}).ok());
  std::vector<er::PairLabel> pairs = {{0, 0, 1}, {0, 1, 0}};
  AugmentConfig cfg;
  cfg.copies_per_positive = 4;
  auto augmented = AugmentErTrainingPairs(left, &right, pairs, cfg);
  // 2 originals + 4 synthetic positives.
  EXPECT_EQ(augmented.size(), 6u);
  EXPECT_EQ(right.num_rows(), 6u);
  size_t pos = 0;
  for (const er::PairLabel& p : augmented) {
    if (p.label == 1) {
      ++pos;
      EXPECT_LT(p.right, right.num_rows());
    }
  }
  EXPECT_EQ(pos, 5u);
}

TEST(AugmentTest, DeterministicWithSeed) {
  data::Table left(data::Schema::OfStrings({"n"}), "l");
  data::Table r1(data::Schema::OfStrings({"n"}), "r");
  ASSERT_TRUE(left.AppendRow({data::Value("alpha beta")}).ok());
  ASSERT_TRUE(r1.AppendRow({data::Value("alpha beta")}).ok());
  data::Table r2 = r1;
  std::vector<er::PairLabel> pairs = {{0, 0, 1}};
  AugmentConfig cfg;
  AugmentErTrainingPairs(left, &r1, pairs, cfg);
  AugmentErTrainingPairs(left, &r2, pairs, cfg);
  ASSERT_EQ(r1.num_rows(), r2.num_rows());
  for (size_t i = 0; i < r1.num_rows(); ++i) {
    EXPECT_EQ(r1.at(i, 0).ToString(), r2.at(i, 0).ToString());
  }
}

}  // namespace
}  // namespace autodc::weak
