// Tests for the SIMD kernel layer and the TensorPool workspace:
// scalar-vs-AVX2 agreement (including every remainder-lane count),
// per-path determinism, pool reuse/zeroing semantics, and the
// thread-local cache under concurrency (run under TSan via the
// `parallel` ctest label).
#include "src/nn/kernels.h"

#include <cmath>
#include <cstdlib>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "bench/harness.h"
#include "src/common/parallel.h"
#include "src/common/rng.h"
#include "src/nn/tensor.h"
#include "src/nn/tensor_pool.h"

namespace autodc {
namespace {

using nn::kernels::SetForceScalar;
using nn::kernels::SimdActive;

// Tolerance policy from DESIGN.md: relative 1e-5 with an absolute floor
// of 1e-5 for near-zero values.
void ExpectClose(double scalar, double simd, const char* what, size_t n) {
  double tol = 1e-5 * std::max({1.0, std::fabs(scalar), std::fabs(simd)});
  EXPECT_NEAR(scalar, simd, tol) << what << " n=" << n;
}

std::vector<float> RandomVec(size_t n, Rng* rng) {
  std::vector<float> v(n);
  for (float& x : v) x = static_cast<float>(rng->Uniform(-2.0, 2.0));
  return v;
}

// Restores the dispatch default (env/CPU controlled) after each test so
// a failing agreement test cannot leak forced-scalar mode into the rest
// of the binary.
class KernelsTest : public ::testing::Test {
 protected:
  void TearDown() override { SetForceScalar(false); }
};

// Sizes covering every AVX2 remainder-lane count (1..15 both straddles
// the 8-wide vector width and stays under it) plus multi-vector bodies.
const size_t kSizes[] = {1,  2,  3,  4,  5,  6,  7,  8,   9,   10,  11, 12,
                         13, 14, 15, 16, 17, 24, 31, 32,  33,  63,  64, 65,
                         100, 255, 256, 257, 1000, 1024, 4096};

TEST_F(KernelsTest, ReductionKernelsAgreeAcrossPaths) {
  if (!SimdActive()) GTEST_SKIP() << "SIMD table inactive on this machine";
  Rng rng(11);
  for (size_t n : kSizes) {
    std::vector<float> a = RandomVec(n, &rng);
    std::vector<float> b = RandomVec(n, &rng);
    SetForceScalar(true);
    float dot_s = nn::kernels::DotF32(a.data(), b.data(), n);
    double dotd_s = nn::kernels::DotF32D(a.data(), b.data(), n);
    double sum_s = nn::kernels::SumF32(a.data(), n);
    double sumsq_s = nn::kernels::SumSqF32(a.data(), n);
    double sqdist_s = nn::kernels::SqDistF32(a.data(), b.data(), n);
    double cos_s = nn::kernels::CosineF32(a.data(), b.data(), n);
    SetForceScalar(false);
    ExpectClose(dot_s, nn::kernels::DotF32(a.data(), b.data(), n), "dot", n);
    ExpectClose(dotd_s, nn::kernels::DotF32D(a.data(), b.data(), n), "dotd",
                n);
    ExpectClose(sum_s, nn::kernels::SumF32(a.data(), n), "sum", n);
    ExpectClose(sumsq_s, nn::kernels::SumSqF32(a.data(), n), "sumsq", n);
    ExpectClose(sqdist_s, nn::kernels::SqDistF32(a.data(), b.data(), n),
                "sqdist", n);
    ExpectClose(cos_s, nn::kernels::CosineF32(a.data(), b.data(), n), "cos",
                n);
  }
}

TEST_F(KernelsTest, CosineF64AgreesAcrossPaths) {
  if (!SimdActive()) GTEST_SKIP() << "SIMD table inactive on this machine";
  Rng rng(12);
  for (size_t n : kSizes) {
    std::vector<double> a(n), b(n);
    for (size_t i = 0; i < n; ++i) {
      a[i] = rng.Uniform(-2.0, 2.0);
      b[i] = rng.Uniform(-2.0, 2.0);
    }
    SetForceScalar(true);
    double s = nn::kernels::CosineF64(a.data(), b.data(), n);
    SetForceScalar(false);
    ExpectClose(s, nn::kernels::CosineF64(a.data(), b.data(), n), "cos64", n);
  }
}

TEST_F(KernelsTest, ElementwiseKernelsAgreeAcrossPaths) {
  if (!SimdActive()) GTEST_SKIP() << "SIMD table inactive on this machine";
  Rng rng(13);
  for (size_t n : kSizes) {
    std::vector<float> x = RandomVec(n, &rng);
    std::vector<float> b = RandomVec(n, &rng);
    std::vector<float> y0 = RandomVec(n, &rng);

    auto run = [&](bool scalar) {
      SetForceScalar(scalar);
      std::vector<float> y = y0;
      nn::kernels::AxpyF32(0.37f, x.data(), y.data(), n);
      nn::kernels::ScaleAddF32(-1.2f, x.data(), 0.9f, y.data(), n);
      nn::kernels::ScaleF32(1.01f, y.data(), n);
      nn::kernels::MulF32(x.data(), y.data(), n);
      nn::kernels::MulAddF32(x.data(), b.data(), y.data(), n);
      nn::kernels::ClampF32(-5.0f, 5.0f, y.data(), n);
      return y;
    };
    std::vector<float> ys = run(true);
    std::vector<float> yv = run(false);
    for (size_t i = 0; i < n; ++i) {
      ExpectClose(ys[i], yv[i], "elementwise chain", n);
    }
  }
}

TEST_F(KernelsTest, AdamUpdateAgreesAcrossPaths) {
  if (!SimdActive()) GTEST_SKIP() << "SIMD table inactive on this machine";
  Rng rng(14);
  for (size_t n : kSizes) {
    std::vector<float> g = RandomVec(n, &rng);
    std::vector<float> m0 = RandomVec(n, &rng);
    std::vector<float> v0(n);
    for (float& v : v0) v = static_cast<float>(rng.Uniform(0.0, 1.0));
    std::vector<float> p0 = RandomVec(n, &rng);

    auto run = [&](bool scalar) {
      SetForceScalar(scalar);
      std::vector<float> m = m0, v = v0, p = p0;
      nn::kernels::AdamUpdateF32(g.data(), m.data(), v.data(), p.data(), n,
                                 0.001f, 0.9f, 0.999f, 1e-8f, 0.1f, 0.001f);
      return p;
    };
    std::vector<float> ps = run(true);
    std::vector<float> pv = run(false);
    for (size_t i = 0; i < n; ++i) ExpectClose(ps[i], pv[i], "adam", n);
  }
}

TEST_F(KernelsTest, GemmKernelsAgreeAcrossPaths) {
  if (!SimdActive()) GTEST_SKIP() << "SIMD table inactive on this machine";
  Rng rng(15);
  // Odd shapes exercise the row and column remainders of the 8x8
  // micro-kernel.
  const size_t shapes[][3] = {{1, 1, 1},   {3, 5, 7},    {8, 8, 8},
                              {9, 17, 13}, {16, 16, 16}, {23, 37, 29},
                              {64, 32, 48}};
  for (const auto& s : shapes) {
    size_t n = s[0], m = s[1], k = s[2];
    std::vector<float> a = RandomVec(n * m, &rng);
    std::vector<float> b = RandomVec(m * k, &rng);
    std::vector<float> b2 = RandomVec(n * k, &rng);  // B for the A^T case
    std::vector<float> bt = RandomVec(k * m, &rng);

    auto run = [&](bool scalar) {
      SetForceScalar(scalar);
      std::vector<float> c1(n * k, 0.0f), c2(m * k, 0.0f), c3(n * k, 0.0f);
      nn::kernels::GemmPanelF32(a.data(), b.data(), c1.data(), 0, n, m, k);
      // a reinterpreted as A {n, m}: C {m, k} = A^T * B2 for B2 {n, k}.
      nn::kernels::GemmTransAPanelF32(a.data(), b2.data(), c2.data(), 0, m, n,
                                      m, k);
      nn::kernels::GemmTransBPanelF32(a.data(), bt.data(), c3.data(), 0, n, m,
                                      k);
      c1.insert(c1.end(), c2.begin(), c2.end());
      c1.insert(c1.end(), c3.begin(), c3.end());
      return c1;
    };
    std::vector<float> cs = run(true);
    std::vector<float> cv = run(false);
    ASSERT_EQ(cs.size(), cv.size());
    for (size_t i = 0; i < cs.size(); ++i) {
      ExpectClose(cs[i], cv[i], "gemm", n * 100 + k);
    }
  }
}

TEST_F(KernelsTest, Gemm8x8MicroKernelAgreesAcrossPaths) {
  if (!SimdActive()) GTEST_SKIP() << "SIMD table inactive on this machine";
  Rng rng(16);
  for (size_t kc : {1, 2, 7, 8, 64}) {
    size_t lda = kc + 3, ldb = 8 + 5, ldc = 8 + 2;  // strided storage
    std::vector<float> a = RandomVec(8 * lda, &rng);
    std::vector<float> b = RandomVec(kc * ldb, &rng);
    std::vector<float> c0 = RandomVec(8 * ldc, &rng);

    auto run = [&](bool scalar) {
      SetForceScalar(scalar);
      std::vector<float> c = c0;
      nn::kernels::Gemm8x8F32(a.data(), lda, b.data(), ldb, c.data(), ldc, kc);
      return c;
    };
    std::vector<float> cs = run(true);
    std::vector<float> cv = run(false);
    for (size_t i = 0; i < cs.size(); ++i) {
      ExpectClose(cs[i], cv[i], "gemm8x8", kc);
    }
  }
}

// Each path must be a pure function of its inputs: same bits on repeat
// calls (the thread-count invariance of the full matmuls is covered in
// parallel_test.cc).
TEST_F(KernelsTest, EachPathIsDeterministic) {
  Rng rng(17);
  std::vector<float> a = RandomVec(1000, &rng);
  std::vector<float> b = RandomVec(1000, &rng);
  for (bool scalar : {true, false}) {
    if (!scalar && !SimdActive()) continue;
    SetForceScalar(scalar);
    float d1 = nn::kernels::DotF32(a.data(), b.data(), a.size());
    double c1 = nn::kernels::CosineF32(a.data(), b.data(), a.size());
    for (int rep = 0; rep < 3; ++rep) {
      EXPECT_EQ(d1, nn::kernels::DotF32(a.data(), b.data(), a.size()));
      EXPECT_EQ(c1, nn::kernels::CosineF32(a.data(), b.data(), a.size()));
    }
  }
}

TEST_F(KernelsTest, ZeroLengthAndZeroNormEdgeCases) {
  EXPECT_EQ(nn::kernels::DotF32(nullptr, nullptr, 0), 0.0f);
  EXPECT_EQ(nn::kernels::SumSqF32(nullptr, 0), 0.0);
  EXPECT_EQ(nn::kernels::CosineF32(nullptr, nullptr, 0), 0.0);
  std::vector<float> z(8, 0.0f), o(8, 1.0f);
  EXPECT_EQ(nn::kernels::CosineF32(z.data(), o.data(), 8), 0.0);
  EXPECT_EQ(nn::kernels::CosineF32(o.data(), z.data(), 8), 0.0);
}

// ---------------------------------------------------------------------
// TensorPool / WorkspaceScope

TEST(TensorPoolTest, AcquireReleaseReusesBuffers) {
  nn::TensorPool& pool = nn::TensorPool::Global();
  pool.Clear();
  pool.ResetStats();

  std::vector<float> buf = pool.Acquire(100);
  ASSERT_EQ(buf.size(), 100u);
  EXPECT_GE(buf.capacity(), 128u);  // power-of-two bucket
  const float* ptr = buf.data();
  for (float& x : buf) x = 3.0f;
  pool.Release(std::move(buf));

  // Same bucket (capacity 128 serves any n <= 128) and same thread, so
  // the thread cache must hand the identical buffer back, zero-filled.
  std::vector<float> again = pool.Acquire(128);
  EXPECT_EQ(again.data(), ptr);
  for (float x : again) EXPECT_EQ(x, 0.0f);
  pool.Release(std::move(again));

  nn::TensorPool::Stats st = pool.GetStats();
  EXPECT_EQ(st.misses, 1u);
  EXPECT_EQ(st.hits, 1u);
  EXPECT_EQ(st.releases, 2u);
}

TEST(TensorPoolTest, ZeroSizeAndOversizeBypassThePool) {
  nn::TensorPool& pool = nn::TensorPool::Global();
  std::vector<float> empty = pool.Acquire(0);
  EXPECT_TRUE(empty.empty());
  // Larger than 2^kMaxBucket floats: allocated plainly, never cached.
  size_t huge = (size_t{1} << nn::TensorPool::kMaxBucket) + 1;
  std::vector<float> big = pool.Acquire(huge);
  EXPECT_EQ(big.size(), huge);
  pool.Release(std::move(big));
}

TEST(TensorPoolTest, WorkspaceScopeIsPerThreadAndNests) {
  EXPECT_FALSE(nn::WorkspaceActive());
  {
    nn::WorkspaceScope outer;
    EXPECT_TRUE(nn::WorkspaceActive());
    {
      nn::WorkspaceScope inner;
      EXPECT_TRUE(nn::WorkspaceActive());
    }
    EXPECT_TRUE(nn::WorkspaceActive());

    // A fresh thread starts outside workspace mode regardless of the
    // parent thread's scopes.
    bool active_on_worker = true;
    std::thread t([&] { active_on_worker = nn::WorkspaceActive(); });
    t.join();
    EXPECT_FALSE(active_on_worker);
  }
  EXPECT_FALSE(nn::WorkspaceActive());
}

TEST(TensorPoolTest, PooledTensorMayOutliveItsScope) {
  nn::Tensor escaped;
  {
    nn::WorkspaceScope ws;
    nn::Tensor t = nn::Tensor::Full({4, 4}, 2.5f);
    escaped = std::move(t);  // buffer ownership leaves the scope
  }
  ASSERT_EQ(escaped.size(), 16u);
  for (size_t i = 0; i < escaped.size(); ++i) EXPECT_EQ(escaped[i], 2.5f);
}

TEST(TensorPoolTest, WorkspaceTensorsRecycleAllocations) {
  nn::TensorPool& pool = nn::TensorPool::Global();
  pool.Clear();
  {  // warm the per-bucket cache
    nn::WorkspaceScope ws;
    nn::Tensor warm({16, 16});
  }
  pool.ResetStats();
  {
    nn::WorkspaceScope ws;
    for (int step = 0; step < 10; ++step) {
      nn::Tensor t({16, 16});
      t.Fill(1.0f);
    }
  }
  nn::TensorPool::Stats st = pool.GetStats();
  EXPECT_EQ(st.misses, 0u) << "steady state must not heap-allocate";
  EXPECT_EQ(st.hits, 10u);
}

// Thread-local caches under real concurrency; meaningful mainly under
// TSan (`ctest -L parallel` in an ENABLE_TSAN build).
TEST(TensorPoolTest, ConcurrentWorkspacesAreRaceFree) {
  nn::TensorPool::Global().Clear();
  SetNumThreads(4);
  ParallelFor(0, 8, 1, [](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      nn::WorkspaceScope ws;  // per-worker scope, as DESIGN.md requires
      for (int step = 0; step < 50; ++step) {
        nn::Tensor a({8, 8});
        a.Fill(static_cast<float>(i));
        nn::Tensor b = a;  // copy also draws from the pool
        nn::Axpy(a, 1.0f, &b);
        ASSERT_EQ(b[0], 2.0f * static_cast<float>(i));
      }
    }
  });
  SetNumThreads(1);
}

// ---------------------------------------------------------------------
// RowView

TEST(RowViewTest, ViewsRowsWithoutCopying) {
  nn::Tensor t({3, 4});
  for (size_t i = 0; i < t.size(); ++i) t[i] = static_cast<float>(i);
  nn::RowView row = t.Row(1);
  EXPECT_EQ(row.size, 4u);
  EXPECT_EQ(row.data, t.data() + 4);  // no copy: points into the tensor
  EXPECT_EQ(row[0], 4.0f);
  EXPECT_EQ(row[3], 7.0f);
  float sum = 0.0f;
  for (float v : row) sum += v;
  EXPECT_EQ(sum, 4.0f + 5.0f + 6.0f + 7.0f);
  EXPECT_FALSE(row.empty());
}

// ---------------------------------------------------------------------
// bench_util JSON emitter

TEST(JsonObjectTest, EscapesKeysAndValues) {
  bench::JsonObject o;
  o.Set("plain", std::string("value"));
  o.Set("quote\"key", std::string("back\\slash"));
  o.Set("tab\tkey", std::string("line\nbreak\x01"));
  EXPECT_EQ(o.str(),
            "{\"plain\":\"value\","
            "\"quote\\\"key\":\"back\\\\slash\","
            "\"tab\\tkey\":\"line\\nbreak\\u0001\"}");
}

}  // namespace
}  // namespace autodc
