// Tests for the entity-resolution stack: evaluation math, sampling,
// blocking (attribute vs LSH), features, the classical baselines, and
// the DeepER model in both composition modes on a generated benchmark.
#include <gtest/gtest.h>

#include "src/datagen/er_benchmark.h"
#include "src/embedding/word2vec.h"
#include "src/er/baselines.h"
#include "src/er/blocking.h"
#include "src/er/deeper.h"
#include "src/er/evaluation.h"
#include "src/er/features.h"
#include "src/text/similarity.h"

namespace autodc::er {
namespace {

TEST(EvaluationTest, PerfectPrediction) {
  std::vector<RowPair> truth = {{0, 0}, {1, 2}};
  PrfScore s = Evaluate(truth, truth);
  EXPECT_DOUBLE_EQ(s.precision, 1.0);
  EXPECT_DOUBLE_EQ(s.recall, 1.0);
  EXPECT_DOUBLE_EQ(s.f1, 1.0);
}

TEST(EvaluationTest, PartialPrediction) {
  std::vector<RowPair> truth = {{0, 0}, {1, 1}, {2, 2}, {3, 3}};
  std::vector<RowPair> pred = {{0, 0}, {1, 1}, {9, 9}};
  PrfScore s = Evaluate(pred, truth);
  EXPECT_NEAR(s.precision, 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(s.recall, 0.5, 1e-12);
  EXPECT_EQ(s.true_positives, 2u);
  EXPECT_EQ(s.false_positives, 1u);
  EXPECT_EQ(s.false_negatives, 2u);
}

TEST(EvaluationTest, EmptyPredictionsAndTruth) {
  PrfScore s = Evaluate({}, {{0, 0}});
  EXPECT_DOUBLE_EQ(s.f1, 0.0);
  PrfScore s2 = Evaluate({{0, 0}}, {});
  EXPECT_DOUBLE_EQ(s2.precision, 0.0);
}

TEST(EvaluationTest, DuplicatePredictionsCountedOnce) {
  std::vector<RowPair> truth = {{0, 0}};
  std::vector<RowPair> pred = {{0, 0}, {0, 0}};
  PrfScore s = Evaluate(pred, truth);
  EXPECT_EQ(s.true_positives, 1u);
  EXPECT_EQ(s.false_positives, 0u);
}

TEST(EvaluationTest, BlockingMetrics) {
  std::vector<RowPair> truth = {{0, 0}, {1, 1}};
  std::vector<RowPair> cands = {{0, 0}, {5, 5}};
  EXPECT_DOUBLE_EQ(PairCompleteness(cands, truth), 0.5);
  EXPECT_DOUBLE_EQ(PairCompleteness({}, {}), 1.0);
  EXPECT_DOUBLE_EQ(ReductionRatio(10, 10, 10), 0.9);
}

TEST(SamplingTest, RespectsRatioAndAvoidsMatches) {
  Rng rng(1);
  std::vector<RowPair> matches = {{0, 0}, {1, 1}, {2, 2}};
  auto pairs = SampleTrainingPairs(50, 50, matches, 4, &rng);
  size_t pos = 0, neg = 0;
  for (const PairLabel& p : pairs) {
    if (p.label == 1) {
      ++pos;
    } else {
      ++neg;
      EXPECT_FALSE(std::find(matches.begin(), matches.end(),
                             RowPair{p.left, p.right}) != matches.end())
          << "negative sample is actually a match";
    }
  }
  EXPECT_EQ(pos, 3u);
  EXPECT_EQ(neg, 12u);
}

TEST(FeaturesTest, HandcraftedDimsMatchSchema) {
  data::Schema schema({{"name", data::ValueType::kString},
                       {"price", data::ValueType::kDouble}});
  data::Row a = {data::Value("widget pro"), data::Value(10.0)};
  data::Row b = {data::Value("widget pro"), data::Value(10.0)};
  auto f = HandcraftedPairFeatures(a, b, schema);
  EXPECT_EQ(f.size(), HandcraftedFeatureDim(schema));
  // Identical rows -> all similarities 1, null flags 0.
  EXPECT_FLOAT_EQ(f[0], 0.0f);  // null flag
  for (size_t i = 1; i <= 5; ++i) EXPECT_FLOAT_EQ(f[i], 1.0f);
}

TEST(FeaturesTest, NullsZeroOutSimilarities) {
  data::Schema schema({{"name", data::ValueType::kString}});
  data::Row a = {data::Value::Null()};
  data::Row b = {data::Value("x")};
  auto f = HandcraftedPairFeatures(a, b, schema);
  EXPECT_FLOAT_EQ(f[0], 1.0f);  // null indicator set
  for (size_t i = 1; i < f.size(); ++i) EXPECT_FLOAT_EQ(f[i], 0.0f);
}

TEST(FeaturesTest, EmbeddingFeaturesShape) {
  std::vector<float> ea = {1.0f, 0.0f};
  std::vector<float> eb = {0.0f, 1.0f};
  auto f = EmbeddingPairFeatures(ea, eb);
  EXPECT_EQ(f.size(), EmbeddingFeatureDim(2));
  EXPECT_FLOAT_EQ(f[0], 1.0f);   // |1-0|
  EXPECT_FLOAT_EQ(f[2], 0.0f);   // 1*0
  EXPECT_FLOAT_EQ(f[4], 0.0f);   // cosine of orthogonal vectors
}

TEST(BlockingTest, AttributeBlockingSharesFirstToken) {
  data::Table left(data::Schema::OfStrings({"name"}), "l");
  data::Table right(data::Schema::OfStrings({"name"}), "r");
  ASSERT_TRUE(left.AppendRow({data::Value("sony tv")}).ok());
  ASSERT_TRUE(left.AppendRow({data::Value("apple phone")}).ok());
  ASSERT_TRUE(right.AppendRow({data::Value("sony radio")}).ok());
  ASSERT_TRUE(right.AppendRow({data::Value::Null()}).ok());
  auto cands = AttributeBlocking(left, right, 0);
  ASSERT_EQ(cands.size(), 1u);
  EXPECT_EQ(cands[0], (RowPair{0, 0}));
}

TEST(BlockingTest, LshSimilarVectorsCollideDissimilarDoNot) {
  // 40 near-identical vectors and 40 opposite ones; LSH must pair ups
  // with ups far more than ups with downs.
  Rng rng(2);
  std::vector<std::vector<float>> left, right;
  for (int i = 0; i < 40; ++i) {
    std::vector<float> up(16), down(16);
    for (int d = 0; d < 16; ++d) {
      float base = static_cast<float>(rng.Normal(0, 0.05));
      up[d] = 1.0f + base;
      down[d] = -1.0f + base;
    }
    left.push_back(up);
    right.push_back(i % 2 == 0 ? up : down);
  }
  LshBlocker lsh(16, 6, 4, 7);
  auto cands = lsh.Candidates(left, right);
  size_t same_sign = 0, cross_sign = 0;
  for (const RowPair& c : cands) {
    if (c.second % 2 == 0) ++same_sign;
    else ++cross_sign;
  }
  EXPECT_GT(same_sign, 0u);
  EXPECT_EQ(cross_sign, 0u) << "opposite vectors collided";
}

TEST(BlockingTest, MoreTablesRaiseRecall) {
  Rng rng(3);
  std::vector<std::vector<float>> left, right;
  std::vector<RowPair> truth;
  for (int i = 0; i < 60; ++i) {
    std::vector<float> v(16), w(16);
    for (int d = 0; d < 16; ++d) {
      v[d] = static_cast<float>(rng.Normal());
      w[d] = v[d] + static_cast<float>(rng.Normal(0, 0.3));
    }
    left.push_back(v);
    right.push_back(w);
    truth.push_back({static_cast<size_t>(i), static_cast<size_t>(i)});
  }
  LshBlocker one(16, 8, 1, 7);
  LshBlocker many(16, 8, 8, 7);
  double r1 = PairCompleteness(one.Candidates(left, right), truth);
  double r8 = PairCompleteness(many.Candidates(left, right), truth);
  EXPECT_GE(r8, r1);
  EXPECT_GT(r8, 0.8);
}

TEST(ThresholdMatcherTest, ScoresAndMatches) {
  ThresholdMatcher matcher(0.6);
  data::Table l(data::Schema::OfStrings({"a"}), "l");
  data::Table r(data::Schema::OfStrings({"a"}), "r");
  ASSERT_TRUE(l.AppendRow({data::Value("red apple pie")}).ok());
  ASSERT_TRUE(r.AppendRow({data::Value("red apple pie")}).ok());
  ASSERT_TRUE(r.AppendRow({data::Value("green banana")}).ok());
  auto m = matcher.Match(l, r, {{0, 0}, {0, 1}});
  ASSERT_EQ(m.size(), 1u);
  EXPECT_EQ(m[0], (RowPair{0, 0}));
}

// Full-pipeline fixture: one products benchmark + trained word
// embeddings shared across the DeepER tests (training embeddings is the
// slow part).
class DeepErPipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    datagen::ErBenchmarkConfig cfg;
    cfg.domain = datagen::ErDomain::kProducts;
    cfg.num_entities = 150;
    cfg.dirtiness = 0.55;
    cfg.synonym_rate = 0.6;
    cfg.seed = 17;
    bench_ = new datagen::ErBenchmark(datagen::GenerateErBenchmark(cfg));
    embedding::Word2VecConfig wcfg;
    wcfg.sgns.dim = 24;
    wcfg.sgns.epochs = 6;
    wcfg.sgns.seed = 5;
    words_ = new embedding::EmbeddingStore(
        embedding::TrainWordEmbeddingsFromTables(
            {&bench_->left, &bench_->right}, wcfg));
  }
  static void TearDownTestSuite() {
    delete bench_;
    delete words_;
    bench_ = nullptr;
    words_ = nullptr;
  }

  static std::vector<RowPair> AllPairs(const datagen::ErBenchmark& b) {
    std::vector<RowPair> out;
    for (size_t l = 0; l < b.left.num_rows(); ++l) {
      for (size_t r = 0; r < b.right.num_rows(); ++r) out.push_back({l, r});
    }
    return out;
  }

  static datagen::ErBenchmark* bench_;
  static embedding::EmbeddingStore* words_;
};

datagen::ErBenchmark* DeepErPipelineTest::bench_ = nullptr;
embedding::EmbeddingStore* DeepErPipelineTest::words_ = nullptr;

TEST_F(DeepErPipelineTest, AverageCompositionBeatsThresholdBaseline) {
  Rng rng(11);
  // Hard negatives from same-brand blocking: what the matcher must
  // separate at deployment.
  auto hard = AttributeBlocking(bench_->left, bench_->right, 0);
  auto train = SampleTrainingPairsWithHardNegatives(
      bench_->left.num_rows(), bench_->right.num_rows(), bench_->matches,
      hard, 5, 0.6, &rng);
  DeepErConfig cfg;
  cfg.composition = TupleComposition::kAverage;
  cfg.epochs = 40;
  cfg.learning_rate = 1e-2f;
  DeepEr model(words_, cfg);
  model.FitWeights({&bench_->left, &bench_->right});
  model.Train(bench_->left, bench_->right, train);

  auto cands = AllPairs(*bench_);
  PrfScore deeper =
      Evaluate(model.Match(bench_->left, bench_->right, cands, 0.9),
               bench_->matches);
  ThresholdMatcher rule(0.5);
  PrfScore baseline =
      Evaluate(rule.Match(bench_->left, bench_->right, cands),
               bench_->matches);
  EXPECT_GT(deeper.f1, 0.8) << "DeepER F1 too low";
  EXPECT_GT(deeper.f1, baseline.f1)
      << "DeepER (avg) did not beat the rule baseline: " << deeper.f1
      << " vs " << baseline.f1;
}

TEST_F(DeepErPipelineTest, FeatureMatcherLearns) {
  Rng rng(12);
  auto train = SampleTrainingPairs(bench_->left.num_rows(),
                                   bench_->right.num_rows(), bench_->matches,
                                   5, &rng);
  FeatureMatcher fm(bench_->left.schema(), {16}, 0.01f, 25, 3);
  fm.Train(bench_->left, bench_->right, train);
  PrfScore s = Evaluate(
      fm.Match(bench_->left, bench_->right, AllPairs(*bench_)),
      bench_->matches);
  EXPECT_GT(s.f1, 0.6);
}

TEST_F(DeepErPipelineTest, LshBlockingShrinksCandidatesKeepingRecall) {
  DeepErConfig cfg;
  DeepEr model(words_, cfg);
  model.FitWeights({&bench_->left, &bench_->right});
  std::vector<std::vector<float>> lvecs, rvecs;
  for (size_t i = 0; i < bench_->left.num_rows(); ++i) {
    lvecs.push_back(model.EmbedTupleVector(bench_->left.row(i)));
  }
  for (size_t i = 0; i < bench_->right.num_rows(); ++i) {
    rvecs.push_back(model.EmbedTupleVector(bench_->right.row(i)));
  }
  LshBlocker lsh(words_->dim(), 4, 16, 21);
  auto cands = lsh.Candidates(lvecs, rvecs);
  double recall = PairCompleteness(cands, bench_->matches);
  double reduction = ReductionRatio(cands.size(), lvecs.size(), rvecs.size());
  // Attribute blocking on the cleanest attribute (brand) for contrast.
  auto attr = AttributeBlocking(bench_->left, bench_->right, 0);
  double attr_recall = PairCompleteness(attr, bench_->matches);
  EXPECT_GT(recall, 0.85) << "LSH lost too many true pairs";
  EXPECT_GT(recall, attr_recall)
      << "LSH should beat single-attribute blocking on recall";
  EXPECT_GT(reduction, 0.15) << "LSH did not shrink the candidate space";
}

TEST_F(DeepErPipelineTest, LstmCompositionTrainsAndPredicts) {
  Rng rng(13);
  // Small training set: the LSTM path is per-pair SGD (slow).
  std::vector<RowPair> some_matches(bench_->matches.begin(),
                                    bench_->matches.begin() + 20);
  auto train = SampleTrainingPairs(bench_->left.num_rows(),
                                   bench_->right.num_rows(), some_matches, 3,
                                   &rng);
  DeepErConfig cfg;
  cfg.composition = TupleComposition::kLstm;
  cfg.lstm_hidden = 8;
  cfg.epochs = 4;
  cfg.max_tokens_per_tuple = 12;
  DeepEr model(words_, cfg);
  double loss = model.Train(bench_->left, bench_->right, train);
  EXPECT_LT(loss, 0.65) << "LSTM DeepER failed to reduce loss";
  // Held-out sanity: matched pairs should outscore random pairs on
  // average.
  double match_score = 0.0, random_score = 0.0;
  size_t n = 20;
  for (size_t i = 20; i < 20 + n && i < bench_->matches.size(); ++i) {
    auto [l, r] = bench_->matches[i];
    match_score += model.PredictProba(bench_->left.row(l),
                                      bench_->right.row(r));
  }
  Rng rng2(14);
  for (size_t i = 0; i < n; ++i) {
    size_t l = static_cast<size_t>(rng2.UniformInt(
        0, static_cast<int64_t>(bench_->left.num_rows()) - 1));
    size_t r = static_cast<size_t>(rng2.UniformInt(
        0, static_cast<int64_t>(bench_->right.num_rows()) - 1));
    random_score += model.PredictProba(bench_->left.row(l),
                                       bench_->right.row(r));
  }
  EXPECT_GT(match_score, random_score);
}

TEST_F(DeepErPipelineTest, TupleEmbeddingsOfMatchesAreCloser) {
  DeepErConfig cfg;
  DeepEr model(words_, cfg);
  model.FitWeights({&bench_->left, &bench_->right});
  double match_sim = 0.0;
  for (const auto& [l, r] : bench_->matches) {
    match_sim += text::CosineSimilarity(
        model.EmbedTupleVector(bench_->left.row(l)),
        model.EmbedTupleVector(bench_->right.row(r)));
  }
  match_sim /= static_cast<double>(bench_->matches.size());
  Rng rng(15);
  double rand_sim = 0.0;
  size_t trials = 100;
  for (size_t i = 0; i < trials; ++i) {
    size_t l = static_cast<size_t>(rng.UniformInt(
        0, static_cast<int64_t>(bench_->left.num_rows()) - 1));
    size_t r = static_cast<size_t>(rng.UniformInt(
        0, static_cast<int64_t>(bench_->right.num_rows()) - 1));
    rand_sim += text::CosineSimilarity(
        model.EmbedTupleVector(bench_->left.row(l)),
        model.EmbedTupleVector(bench_->right.row(r)));
  }
  rand_sim /= static_cast<double>(trials);
  EXPECT_GT(match_sim, rand_sim + 0.1);
}

}  // namespace
}  // namespace autodc::er
