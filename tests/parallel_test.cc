// Tests for the autodc::common parallel runtime and the kernels that
// ride on it. Labeled `parallel` in CMake so they can be run alone under
// ThreadSanitizer: `ctest -L parallel` in an ENABLE_TSAN build.
#include "src/common/parallel.h"

#include <atomic>
#include <cmath>
#include <condition_variable>
#include <mutex>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/embedding/sgns.h"
#include "src/nn/kernels.h"
#include "src/nn/tensor.h"

namespace autodc {
namespace {

using nn::AxpyRows;
using nn::GatherRows;
using nn::MatMul;
using nn::MatMulTransA;
using nn::MatMulTransB;
using nn::Tensor;

// ---------------------------------------------------------------------
// ThreadPool

TEST(ThreadPoolTest, SubmitsAndJoinsUnderContention) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_workers(), 3u);  // caller counts as the 4th thread
  EXPECT_EQ(pool.concurrency(), 4u);

  constexpr size_t kTasks = 512;
  std::atomic<size_t> done{0};
  std::mutex mu;
  std::condition_variable cv;
  for (size_t i = 0; i < kTasks; ++i) {
    pool.Submit([&]() {
      if (done.fetch_add(1) + 1 == kTasks) {
        std::lock_guard<std::mutex> lock(mu);
        cv.notify_one();
      }
    });
  }
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&]() { return done.load() == kTasks; });
  EXPECT_EQ(done.load(), kTasks);
}

TEST(ThreadPoolTest, SerialPoolHasNoWorkers) {
  ThreadPool pool0(0);
  ThreadPool pool1(1);
  EXPECT_EQ(pool0.num_workers(), 0u);
  EXPECT_EQ(pool1.num_workers(), 0u);
  EXPECT_EQ(pool1.concurrency(), 1u);
}

TEST(ThreadPoolTest, DestructorJoinsQueuedTasks) {
  std::atomic<size_t> done{0};
  {
    ThreadPool pool(3);
    for (size_t i = 0; i < 64; ++i) {
      pool.Submit([&]() { done.fetch_add(1); });
    }
    // ~ThreadPool drains the queue before joining.
  }
  EXPECT_EQ(done.load(), 64u);
}

// ---------------------------------------------------------------------
// ParallelFor / ParallelReduce

// Marks every index in [lo, hi) and asserts single coverage at the end.
void CheckExactCoverage(size_t begin, size_t end, size_t grain) {
  std::vector<std::atomic<int>> hits(end);
  for (auto& h : hits) h.store(0);
  ParallelFor(begin, end, grain, [&](size_t lo, size_t hi) {
    ASSERT_LE(lo, hi);
    for (size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
  });
  for (size_t i = 0; i < begin; ++i) EXPECT_EQ(hits[i].load(), 0) << i;
  for (size_t i = begin; i < end; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ParallelForTest, EmptyRangeNeverInvokes) {
  SetNumThreads(4);
  bool called = false;
  ParallelFor(5, 5, 1, [&](size_t, size_t) { called = true; });
  ParallelFor(7, 3, 1, [&](size_t, size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelForTest, OddSizedRangesCoverExactlyOnce) {
  SetNumThreads(4);
  CheckExactCoverage(0, 1, 1);
  CheckExactCoverage(0, 7, 2);
  CheckExactCoverage(3, 1000, 1);
  CheckExactCoverage(0, 997, 10);  // prime-sized range
}

TEST(ParallelForTest, GrainLargerThanRangeRunsSerially) {
  SetNumThreads(4);
  size_t calls = 0;  // safe: single chunk must run inline on this thread
  ParallelFor(0, 10, 100, [&](size_t lo, size_t hi) {
    ++calls;
    EXPECT_EQ(lo, 0u);
    EXPECT_EQ(hi, 10u);
  });
  EXPECT_EQ(calls, 1u);
}

TEST(ParallelForTest, ZeroGrainIsTreatedAsOne) {
  SetNumThreads(2);
  CheckExactCoverage(0, 16, 0);
}

TEST(ParallelForTest, NestedCallsDegradeToSerial) {
  SetNumThreads(4);
  std::atomic<size_t> total{0};
  ParallelFor(0, 8, 1, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) {
      // Inner ParallelFor from a pool worker must not deadlock.
      ParallelFor(0, 100, 1,
                  [&](size_t l2, size_t h2) { total.fetch_add(h2 - l2); });
    }
  });
  EXPECT_EQ(total.load(), 800u);
}

TEST(ParallelReduceTest, SumsDeterministically) {
  SetNumThreads(4);
  auto sum_range = [](size_t lo, size_t hi) {
    double s = 0.0;
    for (size_t i = lo; i < hi; ++i) s += static_cast<double>(i);
    return s;
  };
  EXPECT_EQ(ParallelReduce(0, 0, 1, sum_range), 0.0);
  EXPECT_EQ(ParallelReduce(0, 1000, 1, sum_range), 999.0 * 1000.0 / 2.0);
  EXPECT_EQ(ParallelReduce(0, 1000, 64, sum_range), 999.0 * 1000.0 / 2.0);
  SetNumThreads(1);
  EXPECT_EQ(ParallelReduce(0, 1000, 1, sum_range), 999.0 * 1000.0 / 2.0);
}

// ---------------------------------------------------------------------
// Multi-threaded matmul vs serial reference

// The pre-parallel naive kernels, kept as the correctness reference.
Tensor NaiveMatMul(const Tensor& a, const Tensor& b) {
  size_t n = a.rows(), m = a.cols(), k = b.cols();
  Tensor c({n, k});
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < m; ++j) {
      float av = a.at(i, j);
      for (size_t t = 0; t < k; ++t) c.at(i, t) += av * b.at(j, t);
    }
  }
  return c;
}

Tensor NaiveMatMulTransA(const Tensor& a, const Tensor& b) {
  size_t m = a.rows(), n = a.cols(), k = b.cols();
  Tensor c({n, k});
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = 0; j < n; ++j) {
      for (size_t t = 0; t < k; ++t) c.at(j, t) += a.at(i, j) * b.at(i, t);
    }
  }
  return c;
}

Tensor NaiveMatMulTransB(const Tensor& a, const Tensor& b) {
  size_t n = a.rows(), m = a.cols(), k = b.rows();
  Tensor c({n, k});
  for (size_t i = 0; i < n; ++i) {
    for (size_t t = 0; t < k; ++t) {
      double dot = 0.0;
      for (size_t j = 0; j < m; ++j) {
        dot += static_cast<double>(a.at(i, j)) * b.at(t, j);
      }
      c.at(i, t) = static_cast<float>(dot);
    }
  }
  return c;
}

void ExpectNear(const Tensor& got, const Tensor& want, float tol) {
  ASSERT_EQ(got.shape(), want.shape());
  for (size_t i = 0; i < got.size(); ++i) {
    ASSERT_NEAR(got[i], want[i], tol) << "at flat index " << i;
  }
}

TEST(ParallelMatMulTest, MatchesNaiveReferenceAcrossThreadCounts) {
  Rng rng(99);
  // Odd, non-tile-aligned shapes on purpose.
  Tensor a = Tensor::RandomUniform({37, 91}, 1.0f, &rng);
  Tensor b = Tensor::RandomUniform({91, 53}, 1.0f, &rng);
  Tensor at = Tensor::RandomUniform({91, 37}, 1.0f, &rng);
  Tensor bt = Tensor::RandomUniform({53, 91}, 1.0f, &rng);

  Tensor want = NaiveMatMul(a, b);
  Tensor want_ta = NaiveMatMulTransA(at, b);
  Tensor want_tb = NaiveMatMulTransB(a, bt);

  for (size_t threads : {1u, 2u, 4u}) {
    SetNumThreads(threads);
    ExpectNear(MatMul(a, b), want, 1e-5f);
    ExpectNear(MatMulTransA(at, b), want_ta, 1e-5f);
    ExpectNear(MatMulTransB(a, bt), want_tb, 1e-5f);
  }
  SetNumThreads(1);
}

TEST(ParallelMatMulTest, ThreadCountDoesNotChangeBits) {
  Rng rng(7);
  Tensor a = Tensor::RandomUniform({65, 130}, 2.0f, &rng);
  Tensor b = Tensor::RandomUniform({130, 65}, 2.0f, &rng);
  SetNumThreads(1);
  Tensor serial = MatMul(a, b);
  SetNumThreads(4);
  Tensor parallel = MatMul(a, b);
  SetNumThreads(1);
  for (size_t i = 0; i < serial.size(); ++i) {
    ASSERT_EQ(serial[i], parallel[i]) << "at flat index " << i;
  }
}

TEST(GatherScatterRowsTest, GatherThenScatterRoundTrips) {
  Rng rng(3);
  Tensor m = Tensor::RandomUniform({6, 4}, 1.0f, &rng);
  std::vector<size_t> idx = {5, 0, 0, 3};
  Tensor g = GatherRows(m, idx);
  ASSERT_EQ(g.rows(), 4u);
  ASSERT_EQ(g.cols(), 4u);
  for (size_t i = 0; i < idx.size(); ++i) {
    for (size_t j = 0; j < 4; ++j) EXPECT_EQ(g.at(i, j), m.at(idx[i], j));
  }
  Tensor acc = Tensor::Zeros({6, 4});
  AxpyRows(g, idx, 2.0f, &acc);
  // Row 0 was gathered twice, so it accumulates twice.
  for (size_t j = 0; j < 4; ++j) {
    EXPECT_FLOAT_EQ(acc.at(0, j), 4.0f * m.at(0, j));
    EXPECT_FLOAT_EQ(acc.at(5, j), 2.0f * m.at(5, j));
    EXPECT_FLOAT_EQ(acc.at(3, j), 2.0f * m.at(3, j));
    EXPECT_FLOAT_EQ(acc.at(1, j), 0.0f);
  }
}

// ---------------------------------------------------------------------
// SGNS determinism guard

// Golden values recorded from the seed (pre-parallel) implementation for
// this exact configuration and corpus. `num_threads = 1` must reproduce
// them bit-for-bit: the serial path consumes the RNG in the original
// order and applies updates in the original order. The scalar kernel
// path replicates the seed loops op for op; the SIMD path is only
// tolerance-equal (see DESIGN.md), so this golden test pins scalar.
TEST(SgnsParallelTest, SingleThreadIsBitIdenticalToSeedImplementation) {
  nn::kernels::SetForceScalar(true);
  embedding::SgnsConfig cfg;
  cfg.dim = 8;
  cfg.window = 2;
  cfg.negatives = 3;
  cfg.epochs = 3;
  cfg.seed = 123;
  cfg.num_threads = 1;
  embedding::SgnsModel model(12, cfg);
  std::vector<std::vector<size_t>> seqs = {
      {0, 1, 2, 3, 4, 5}, {5, 4, 3, 2, 1, 0}, {6, 7, 8, 9, 10, 11},
      {0, 2, 4, 6, 8, 10}, {1, 3, 5, 7, 9, 11},
  };
  std::vector<double> weights(12);
  for (size_t i = 0; i < 12; ++i) weights[i] = 1.0 + 0.25 * i;
  double loss = model.Train(seqs, weights);

  EXPECT_EQ(loss, 2.6516020168428835);
  const float kGolden0[8] = {-0x1.3a3f4ep-7f, 0x1.16089cp-8f, 0x1.abe988p-6f,
                             0x1.08fa4cp-6f,  -0x1.57cb4p-6f, -0x1.37ea8cp-6f,
                             0x1.bce95ep-6f,  -0x1.a5e818p-7f};
  const float kGolden5[8] = {-0x1.f7430ap-7f, -0x1.c20f0cp-6f, 0x1.ba2f9ep-9f,
                             -0x1.661f9ap-6f, -0x1.beb30ap-7f, -0x1.4d7084p-6f,
                             0x1.0de2a2p-7f,  -0x1.75377p-6f};
  const float kGolden11[8] = {-0x1.a4475ep-6f, -0x1.e43d72p-7f,
                              0x1.220a74p-7f,  -0x1.87acd6p-6f,
                              -0x1.6a260cp-8f, 0x1.6f58f2p-8f,
                              0x1.915f9p-6f,   -0x1.bc9a9cp-9f};
  for (size_t d = 0; d < 8; ++d) {
    EXPECT_EQ(model.VectorOf(0)[d], kGolden0[d]) << "dim " << d;
    EXPECT_EQ(model.VectorOf(5)[d], kGolden5[d]) << "dim " << d;
    EXPECT_EQ(model.VectorOf(11)[d], kGolden11[d]) << "dim " << d;
  }
  nn::kernels::SetForceScalar(false);
}

// Hogwild training races on the embedding matrices by design (lock-free
// float updates; SGD tolerates lost writes). TSan rightly flags those
// races, so this smoke test is compiled out of TSan builds — the rest of
// the parallel label (pool, ParallelFor, matmul) stays TSan-clean.
#if !defined(__SANITIZE_THREAD__)
TEST(SgnsParallelTest, HogwildTrainingLearnsAndStaysFinite) {
  SetNumThreads(4);
  embedding::SgnsConfig cfg;
  cfg.dim = 16;
  cfg.window = 2;
  cfg.epochs = 6;
  cfg.seed = 11;
  cfg.num_threads = 4;
  size_t vocab = 20;
  // Two disjoint token communities: co-occurring tokens should end up
  // closer than cross-community tokens even with racy updates.
  std::vector<std::vector<size_t>> seqs;
  Rng rng(5);
  for (size_t s = 0; s < 40; ++s) {
    std::vector<size_t> seq;
    size_t base = (s % 2) * 10;
    for (size_t i = 0; i < 12; ++i) {
      seq.push_back(base + static_cast<size_t>(rng.UniformInt(0, 9)));
    }
    seqs.push_back(std::move(seq));
  }
  std::vector<double> weights(vocab, 1.0);
  embedding::SgnsModel model(vocab, cfg);
  double loss = model.Train(seqs, weights);
  ASSERT_TRUE(std::isfinite(loss));
  ASSERT_GT(loss, 0.0);

  auto cosine = [&](size_t x, size_t y) {
    const auto& a = model.VectorOf(x);
    const auto& b = model.VectorOf(y);
    double dot = 0.0, na = 0.0, nb = 0.0;
    for (size_t d = 0; d < a.size(); ++d) {
      dot += a[d] * b[d];
      na += a[d] * a[d];
      nb += b[d] * b[d];
    }
    return dot / std::sqrt(na * nb);
  };
  double within = 0.0, across = 0.0;
  size_t nw = 0, na = 0;
  for (size_t x = 0; x < 10; ++x) {
    for (size_t y = x + 1; y < 10; ++y) {
      within += cosine(x, y);
      ++nw;
      across += cosine(x, y + 10);
      ++na;
    }
  }
  EXPECT_GT(within / nw, across / na);
  SetNumThreads(1);
}
#endif  // !defined(__SANITIZE_THREAD__)

}  // namespace
}  // namespace autodc
