// Tests for the Chrome trace-event exporter: a deterministic synthetic
// span tree rendered to golden JSON structure (parsed back through the
// in-tree parser, not string-compared), the empty-buffer and dropped-
// span cases, the live Span -> WriteTrace round trip, and the
// AUTODC_DISABLE_OBS contract. Runs under the `obs` ctest label.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/common/json_parse.h"
#include "src/obs/trace.h"
#include "src/obs/trace_export.h"

namespace autodc::obs {
namespace {

// A fixed two-thread span tree:
//   thread 0:  root[0..100us] > child_a[10..30] > grandchild[12..20]
//              root           > child_b[40..90]
//   thread 1:  worker[5..95us]
// Records are appended out of creation order on purpose — the exporter
// must sort them back into parent-before-child order itself.
std::vector<SpanRecord> GoldenSpans() {
  std::vector<SpanRecord> spans;
  spans.push_back({"child_b", 4, 1, 1, 0, 40, 50});
  spans.push_back({"grandchild", 3, 2, 2, 0, 12, 8});
  spans.push_back({"root", 1, 0, 0, 0, 0, 100});
  spans.push_back({"worker", 5, 0, 0, 1, 5, 90});
  spans.push_back({"child_a", 2, 1, 1, 0, 10, 20});
  return spans;
}

// Pulls the "X" (complete) events out of a parsed trace, in file order.
std::vector<const JsonValue*> CompleteEvents(const JsonValue& doc) {
  std::vector<const JsonValue*> out;
  const JsonValue* events = doc.Find("traceEvents");
  if (events == nullptr || !events->is_array()) return out;
  for (const JsonValue& e : events->array) {
    const JsonValue* ph = e.Find("ph");
    if (ph != nullptr && ph->StringOr("") == "X") out.push_back(&e);
  }
  return out;
}

TEST(TraceExportTest, GoldenTreeParsesWithParentsBeforeChildren) {
  std::string json = FormatChromeTrace(GoldenSpans(), 0);
  auto parsed = ParseJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  const JsonValue& doc = parsed.ValueOrDie();

  std::vector<const JsonValue*> events = CompleteEvents(doc);
  ASSERT_EQ(events.size(), 5u);
  // Sorted by (ts, id): root, worker, child_a, grandchild, child_b —
  // ids are allotted in creation order, so every parent precedes its
  // children even across threads.
  const char* expected[] = {"root", "worker", "child_a", "grandchild",
                            "child_b"};
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(events[i]->Find("name")->StringOr(""), expected[i]) << i;
  }

  // Spot-check one event's full shape.
  const JsonValue& child_a = *events[2];
  EXPECT_EQ(child_a.Find("cat")->StringOr(""), "autodc");
  EXPECT_EQ(child_a.Find("ts")->NumberOr(-1), 10.0);
  EXPECT_EQ(child_a.Find("dur")->NumberOr(-1), 20.0);
  EXPECT_EQ(child_a.Find("pid")->NumberOr(-1), kTracePid);
  EXPECT_EQ(child_a.Find("tid")->NumberOr(-1), 0.0);
  const JsonValue* args = child_a.Find("args");
  ASSERT_NE(args, nullptr);
  EXPECT_EQ(args->Find("span_id")->NumberOr(-1), 2.0);
  EXPECT_EQ(args->Find("parent_id")->NumberOr(-1), 1.0);
  EXPECT_EQ(args->Find("depth")->NumberOr(-1), 1.0);
  // The cross-thread span keeps its own tid track.
  EXPECT_EQ(events[1]->Find("tid")->NumberOr(-1), 1.0);
}

TEST(TraceExportTest, EmitsProcessAndPerThreadMetadata) {
  std::string json = FormatChromeTrace(GoldenSpans(), 0);
  auto parsed = ParseJson(json);
  ASSERT_TRUE(parsed.ok());
  const JsonValue* events = parsed.ValueOrDie().Find("traceEvents");
  ASSERT_NE(events, nullptr);
  size_t process_meta = 0, thread_meta = 0;
  for (const JsonValue& e : events->array) {
    if (e.Find("ph")->StringOr("") != "M") continue;
    std::string name = e.Find("name")->StringOr("");
    if (name == "process_name") ++process_meta;
    if (name == "thread_name") ++thread_meta;
  }
  EXPECT_EQ(process_meta, 1u);
  EXPECT_EQ(thread_meta, 2u);  // one per distinct tid (0 and 1)
}

TEST(TraceExportTest, OtherDataCarriesCountsAndDrops) {
  std::string json = FormatChromeTrace(GoldenSpans(), 7);
  auto parsed = ParseJson(json);
  ASSERT_TRUE(parsed.ok());
  const JsonValue* other = parsed.ValueOrDie().Find("otherData");
  ASSERT_NE(other, nullptr);
  EXPECT_EQ(other->Find("spans")->NumberOr(-1), 5.0);
  EXPECT_EQ(other->Find("spans_dropped")->NumberOr(-1), 7.0);
}

TEST(TraceExportTest, DeterministicBytesForEqualInput) {
  EXPECT_EQ(FormatChromeTrace(GoldenSpans(), 3),
            FormatChromeTrace(GoldenSpans(), 3));
}

TEST(TraceExportTest, EmptyBufferIsStillAValidTrace) {
  std::string json = FormatChromeTrace({}, 0);
  auto parsed = ParseJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  const JsonValue& doc = parsed.ValueOrDie();
  EXPECT_TRUE(CompleteEvents(doc).empty());
  // Process metadata still present so an empty trace loads cleanly.
  const JsonValue* events = doc.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_FALSE(events->array.empty());
  EXPECT_EQ(events->array[0].Find("name")->StringOr(""), "process_name");
  EXPECT_EQ(doc.Find("otherData")->Find("spans")->NumberOr(-1), 0.0);
}

TEST(TraceExportTest, EscapesSpanNames) {
  std::vector<SpanRecord> spans = {{"quote\"back\\slash", 1, 0, 0, 0, 0, 1}};
  std::string json = FormatChromeTrace(spans, 0);
  auto parsed = ParseJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  std::vector<const JsonValue*> events =
      CompleteEvents(parsed.ValueOrDie());
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0]->Find("name")->StringOr(""), "quote\"back\\slash");
}

TEST(TraceExportTest, WriteTraceDrainsLiveSpansToFile) {
  std::string path =
      ::testing::TempDir() + "/trace_export_test_live.json";
  ClearSpans();
  {
    Span outer("outer");
    Span inner("inner");
  }
  ASSERT_TRUE(WriteTrace(path));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  auto parsed = ParseJson(buf.str());
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  std::vector<const JsonValue*> events =
      CompleteEvents(parsed.ValueOrDie());
#ifdef AUTODC_DISABLE_OBS
  // Disabled build: spans never record, the trace is valid but empty.
  EXPECT_TRUE(events.empty());
#else
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0]->Find("name")->StringOr(""), "outer");
  EXPECT_EQ(events[1]->Find("name")->StringOr(""), "inner");
  // The live parent/child link survives the round trip.
  EXPECT_EQ(events[1]->Find("args")->Find("parent_id")->NumberOr(-1),
            events[0]->Find("args")->Find("span_id")->NumberOr(-2));
  // WriteTrace drained the buffer: a second write is empty.
  ASSERT_TRUE(WriteTrace(path));
  std::ifstream in2(path);
  std::stringstream buf2;
  buf2 << in2.rdbuf();
  auto parsed2 = ParseJson(buf2.str());
  ASSERT_TRUE(parsed2.ok());
  EXPECT_TRUE(CompleteEvents(parsed2.ValueOrDie()).empty());
#endif
  std::remove(path.c_str());
}

TEST(TraceExportTest, WriteTraceRejectsUnopenablePath) {
  EXPECT_FALSE(WriteTrace("/nonexistent-dir/trace.json"));
}

// Collects flow events ("s"/"f") from a parsed trace, in file order.
std::vector<const JsonValue*> FlowEvents(const JsonValue& doc,
                                         const std::string& ph) {
  std::vector<const JsonValue*> out;
  const JsonValue* events = doc.Find("traceEvents");
  if (events == nullptr || !events->is_array()) return out;
  for (const JsonValue& e : events->array) {
    const JsonValue* p = e.Find("ph");
    if (p != nullptr && p->StringOr("") == ph) out.push_back(&e);
  }
  return out;
}

TEST(TraceExportTest, CrossThreadParentEdgeEmitsFlowEvents) {
  // Admission span on thread 0, execute span parented under it on
  // thread 1, one shared trace id — the serve-layer shape.
  std::vector<SpanRecord> spans;
  spans.push_back({"admit", 1, 0, 0, 0, 10, 1, 42});
  spans.push_back({"execute", 2, 1, 0, 1, 15, 30, 42});
  std::string json = FormatChromeTrace(spans, 0);
  auto parsed = ParseJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  const JsonValue& doc = parsed.ValueOrDie();

  std::vector<const JsonValue*> starts = FlowEvents(doc, "s");
  std::vector<const JsonValue*> finishes = FlowEvents(doc, "f");
  ASSERT_EQ(starts.size(), 1u);
  ASSERT_EQ(finishes.size(), 1u);
  // The arrow runs from the parent's slice (its thread, its start) to
  // the child's (its thread, its start), keyed by the child's span id.
  EXPECT_EQ(starts[0]->Find("id")->NumberOr(-1), 2.0);
  EXPECT_EQ(starts[0]->Find("ts")->NumberOr(-1), 10.0);
  EXPECT_EQ(starts[0]->Find("tid")->NumberOr(-1), 0.0);
  EXPECT_EQ(finishes[0]->Find("id")->NumberOr(-1), 2.0);
  EXPECT_EQ(finishes[0]->Find("ts")->NumberOr(-1), 15.0);
  EXPECT_EQ(finishes[0]->Find("tid")->NumberOr(-1), 1.0);
  EXPECT_EQ(finishes[0]->Find("bp")->StringOr(""), "e");

  // Both complete events carry the shared trace id.
  std::vector<const JsonValue*> events = CompleteEvents(doc);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0]->Find("args")->Find("trace_id")->NumberOr(-1), 42.0);
  EXPECT_EQ(events[1]->Find("args")->Find("trace_id")->NumberOr(-1), 42.0);
  EXPECT_EQ(doc.Find("otherData")->Find("flow_edges")->NumberOr(-1), 1.0);
}

TEST(TraceExportTest, SameThreadEdgesGetNoFlowEvents) {
  // The golden tree's only parent/child edges are intra-thread; track
  // nesting already draws those, so no arrows.
  std::string json = FormatChromeTrace(GoldenSpans(), 0);
  auto parsed = ParseJson(json);
  ASSERT_TRUE(parsed.ok());
  const JsonValue& doc = parsed.ValueOrDie();
  EXPECT_TRUE(FlowEvents(doc, "s").empty());
  EXPECT_TRUE(FlowEvents(doc, "f").empty());
  EXPECT_EQ(doc.Find("otherData")->Find("flow_edges")->NumberOr(-1), 0.0);
}

TEST(TraceExportTest, EqualTimestampCrossThreadParentSortsFirst) {
  // Microsecond truncation can give a 1us admission span and its
  // 40us cross-thread child the same start. A duration tie-break
  // would put the longer child first; the id order (creation order)
  // must keep the parent ahead.
  std::vector<SpanRecord> spans;
  spans.push_back({"execute", 9, 3, 0, 1, 50, 40, 7});
  spans.push_back({"admit", 3, 0, 0, 0, 50, 1, 7});
  std::string json = FormatChromeTrace(spans, 0);
  auto parsed = ParseJson(json);
  ASSERT_TRUE(parsed.ok());
  std::vector<const JsonValue*> events =
      CompleteEvents(parsed.ValueOrDie());
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0]->Find("name")->StringOr(""), "admit");
  EXPECT_EQ(events[1]->Find("name")->StringOr(""), "execute");
}

TEST(TraceExportTest, LiveSpansLinkAcrossRealThreads) {
  ClearSpans();
  TraceContext handoff;
  {
    Span admit("admit", NewTrace());
    handoff = admit.Context();
  }
  std::thread worker([&] { Span execute("execute", handoff); });
  worker.join();
  std::vector<SpanRecord> spans = TakeSpans();
#ifdef AUTODC_DISABLE_OBS
  EXPECT_TRUE(spans.empty());
  EXPECT_EQ(handoff.trace_id, 0u);
#else
  ASSERT_EQ(spans.size(), 2u);
  // TakeSpans orders parents before children even across threads.
  EXPECT_EQ(spans[0].name, "admit");
  EXPECT_EQ(spans[1].name, "execute");
  EXPECT_NE(spans[0].trace_id, 0u);
  EXPECT_EQ(spans[0].trace_id, spans[1].trace_id);
  EXPECT_EQ(spans[1].parent_id, spans[0].id);
  EXPECT_EQ(spans[0].parent_id, 0u);
#endif
}

}  // namespace
}  // namespace autodc::obs
