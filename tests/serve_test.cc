// Curation server (DESIGN.md §13): dataset fingerprints, the LRU
// session cache, batched-vs-sequential byte-identity, admission
// control (typed queue-full / tenant-cap rejects), shutdown ordering
// (in-flight drains, queued work gets kShutdown, no use-after-free of
// evicted sessions), the stale-ANN RebuildAnn recovery arc, and
// concurrent multi-tenant load (the TSan leg's subject).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "src/common/json_parse.h"
#include "src/data/table.h"
#include "src/obs/trace.h"
#include "src/obs/trace_export.h"
#include "src/data/table_file.h"
#include "src/embedding/embedding_store.h"
#include "src/serve/fingerprint.h"
#include "src/serve/request.h"
#include "src/serve/server.h"
#include "src/serve/session.h"
#include "src/serve/session_cache.h"

namespace autodc {
namespace {

using data::Row;
using data::Schema;
using data::Table;
using data::Value;
using data::ValueType;
using serve::CurationServer;
using serve::RequestKind;
using serve::ServeConfig;
using serve::ServeRequest;
using serve::ServeResponse;
using serve::ServeStatus;
using serve::Session;
using serve::SessionCache;
using serve::SessionConfig;

/// Mixed numeric/categorical table with some nulls and one planted
/// outlier — enough surface for every request kind.
Table ServingTable(size_t rows, uint64_t salt = 0) {
  Schema schema({{"id", ValueType::kInt},
                 {"price", ValueType::kDouble},
                 {"qty", ValueType::kInt},
                 {"category", ValueType::kString}});
  Table t(schema, "serving");
  const char* cats[] = {"tools", "toys", "food", "books"};
  for (size_t r = 0; r < rows; ++r) {
    Row row;
    row.push_back(Value(static_cast<int64_t>(r + salt)));
    if (r % 13 == 5) {
      row.push_back(Value::Null());
    } else if (r == 7) {
      row.push_back(Value(1e6));  // planted outlier
    } else {
      row.push_back(Value(10.0 + 0.25 * static_cast<double>((r + salt) % 40)));
    }
    row.push_back(Value(static_cast<int64_t>((r + salt) % 9)));
    row.push_back(Value(std::string(cats[(r + salt) % 4])));
    EXPECT_TRUE(t.AppendRow(std::move(row)).ok());
  }
  return t;
}

SessionConfig QuickSessionConfig() {
  SessionConfig c;
  c.scorer_epochs = 2;
  c.max_train_rows = 32;
  return c;
}

/// A request mix covering every kind, rows wrapping over the table.
std::vector<ServeRequest> MixedRequests(uint64_t session, size_t rows,
                                        size_t count,
                                        const std::string& tenant) {
  std::vector<ServeRequest> reqs;
  reqs.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    ServeRequest r;
    r.session = session;
    r.tenant = tenant;
    switch (i % 4) {
      case 0:
      case 1:  // score pairs dominate, as in the bench
        r.kind = RequestKind::kScorePair;
        r.row_a = i % rows;
        r.row_b = (i * 7 + 3) % rows;
        break;
      case 2:
        r.kind = RequestKind::kOutlierCheck;
        r.row_a = i % rows;
        r.col = 1;
        break;
      default:
        r.kind = RequestKind::kNearestRows;
        r.row_a = i % rows;
        r.k = 3;
        break;
    }
    reqs.push_back(std::move(r));
  }
  return reqs;
}

// ---------- fingerprints ----------------------------------------------

TEST(ServeFingerprintTest, TableFingerprintIsContentKeyed) {
  Table a = ServingTable(40);
  Table b = ServingTable(40);
  Table c = ServingTable(40, /*salt=*/1);
  EXPECT_EQ(serve::FingerprintTable(a), serve::FingerprintTable(b));
  EXPECT_NE(serve::FingerprintTable(a), serve::FingerprintTable(c));

  // A view hashes as what it shows: filter-to-all equals the original.
  Table all = a.Filter([](data::RowView) { return true; });
  EXPECT_EQ(serve::FingerprintTable(a), serve::FingerprintTable(all));
  Table some = a.Filter(
      [](data::RowView row) { return !row.is_null(1); });
  EXPECT_NE(serve::FingerprintTable(a), serve::FingerprintTable(some));
}

TEST(ServeFingerprintTest, FileFingerprintIsStableAndContentSensitive) {
  std::string path = testing::TempDir() + "/serve_fp.adct";
  ASSERT_TRUE(data::WriteTableFile(ServingTable(60), path).ok());
  auto fp1 = serve::FingerprintFile(path);
  auto fp2 = serve::FingerprintFile(path);
  ASSERT_TRUE(fp1.ok());
  ASSERT_TRUE(fp2.ok());
  EXPECT_EQ(fp1.ValueOrDie(), fp2.ValueOrDie());

  ASSERT_TRUE(data::WriteTableFile(ServingTable(60, 1), path).ok());
  auto fp3 = serve::FingerprintFile(path);
  ASSERT_TRUE(fp3.ok());
  EXPECT_NE(fp1.ValueOrDie(), fp3.ValueOrDie());
  std::remove(path.c_str());

  EXPECT_FALSE(serve::FingerprintFile("/nonexistent/nope.adct").ok());
}

// ---------- EmbeddingStore::RebuildAnn (the stale-index bugfix) --------

TEST(ServeRebuildAnnTest, StaleIndexRecoversWithBitIdenticalSims) {
  const size_t kDim = 16;
  embedding::EmbeddingStore store(kDim);
  Rng rng(11);
  for (size_t i = 0; i < 200; ++i) {
    std::vector<float> v(kDim);
    for (float& x : v) x = static_cast<float>(rng.Normal());
    ASSERT_TRUE(store.Add("k" + std::to_string(i), std::move(v)).ok());
  }
  ASSERT_TRUE(store.EnableAnn().ok());
  ASSERT_TRUE(store.AnnActive());

  // Overwrite one key: the index goes stale, queries silently fall back
  // to the exact scan — and before RebuildAnn existed, stayed there
  // forever.
  std::vector<float> repl(kDim, 0.5f);
  ASSERT_TRUE(store.Add("k3", repl).ok());
  EXPECT_FALSE(store.AnnActive());

  ASSERT_TRUE(store.RebuildAnn().ok());
  EXPECT_TRUE(store.AnnActive());

  // Rebuilding when fresh is a no-op, not another build.
  ASSERT_TRUE(store.RebuildAnn().ok());
  EXPECT_TRUE(store.AnnActive());

  // Post-rebuild similarities are bit-identical to the exact scan
  // (ANN hits are rescored through the exact formula).
  for (size_t q = 0; q < 10; ++q) {
    std::string key = "k" + std::to_string(q * 17);
    auto ann = store.Nearest(key, 5);
    ASSERT_TRUE(ann.ok());
    store.DisableAnn();
    auto exact = store.Nearest(key, 5);
    ASSERT_TRUE(exact.ok());
    // DisableAnn dropped the index outright, so RebuildAnn (which only
    // refreshes an existing one) must refuse; EnableAnn restores it.
    EXPECT_EQ(store.RebuildAnn().code(), StatusCode::kFailedPrecondition);
    ASSERT_TRUE(store.EnableAnn().ok());
    ASSERT_EQ(ann.ValueOrDie().size(), exact.ValueOrDie().size());
    for (size_t i = 0; i < ann.ValueOrDie().size(); ++i) {
      EXPECT_EQ(ann.ValueOrDie()[i].key, exact.ValueOrDie()[i].key);
      EXPECT_EQ(ann.ValueOrDie()[i].similarity,
                exact.ValueOrDie()[i].similarity);
    }
  }
}

TEST(ServeRebuildAnnTest, RebuildWithoutIndexIsFailedPrecondition) {
  embedding::EmbeddingStore store(4);
  ASSERT_TRUE(store.Add("a", {1.f, 0.f, 0.f, 0.f}).ok());
  Status st = store.RebuildAnn();
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition);
}

// ---------- session cache ---------------------------------------------

TEST(ServeSessionCacheTest, LruEvictsOldestAndPinsLiveHandles) {
  SessionCache cache(2);
  auto s1 = Session::Build(ServingTable(24, 1), 1, QuickSessionConfig());
  auto s2 = Session::Build(ServingTable(24, 2), 2, QuickSessionConfig());
  auto s3 = Session::Build(ServingTable(24, 3), 3, QuickSessionConfig());
  ASSERT_TRUE(s1.ok());
  ASSERT_TRUE(s2.ok());
  ASSERT_TRUE(s3.ok());
  cache.Put(1, s1.ValueOrDie());
  cache.Put(2, s2.ValueOrDie());

  // Touch 1 so 2 becomes the LRU victim.
  std::shared_ptr<Session> pinned = cache.Get(1);
  ASSERT_NE(pinned, nullptr);
  cache.Put(3, s3.ValueOrDie());
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_TRUE(cache.Contains(1));
  EXPECT_FALSE(cache.Contains(2));
  EXPECT_TRUE(cache.Contains(3));
  EXPECT_EQ(cache.stats().evictions, 1u);

  // An evicted session's handle stays usable (eviction drops the
  // cache's reference only — no use-after-free by construction).
  cache.Put(4, s1.ValueOrDie());  // evicts 1 or 3; pinned still held
  ServeRequest req;
  req.kind = RequestKind::kScorePair;
  req.row_a = 0;
  req.row_b = 1;
  ServeResponse resp = pinned->Execute(req);
  EXPECT_EQ(resp.status, ServeStatus::kOk);
  EXPECT_GE(resp.score, 0.0);
  EXPECT_LE(resp.score, 1.0);
}

// ---------- batched execution: the byte-identity contract -------------

TEST(ServeServerTest, BatchedResponsesByteIdenticalToSequential) {
  ServeConfig cfg;
  cfg.threads = 1;
  cfg.batch_max = 16;
  cfg.batch_wait_us = 500;
  cfg.session = QuickSessionConfig();
  CurationServer server(cfg);
  auto open = server.OpenSessionFromTable(ServingTable(48));
  ASSERT_TRUE(open.ok());
  uint64_t fp = open.ValueOrDie();

  std::vector<ServeRequest> reqs = MixedRequests(fp, 48, 96, "t0");
  // Sequential oracle first (unbatched path, PredictProba per pair).
  std::vector<ServeResponse> expected;
  expected.reserve(reqs.size());
  for (const ServeRequest& r : reqs) expected.push_back(server.ExecuteSequential(r));

  auto pending = server.SubmitMany(reqs);
  const std::vector<ServeResponse>& got = pending->Wait();
  ASSERT_EQ(got.size(), expected.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].status, ServeStatus::kOk) << i << ": " << got[i].message;
    EXPECT_TRUE(got[i] == expected[i])
        << "response " << i << " diverged from the sequential path "
        << "(score " << got[i].score << " vs " << expected[i].score << ")";
  }
  // The window arrived at once, so the batcher must have coalesced.
  EXPECT_GT(server.stats().MeanBatch(), 1.0);
  EXPECT_EQ(server.stats().completed, reqs.size());
}

TEST(ServeServerTest, UnknownSessionAndBadRowsAreTypedErrors) {
  ServeConfig cfg;
  cfg.threads = 1;
  cfg.batch_wait_us = 0;
  cfg.session = QuickSessionConfig();
  CurationServer server(cfg);
  ServeRequest bogus;
  bogus.session = 0xdeadbeef;
  ServeResponse resp = server.Submit(bogus)->Wait()[0];
  EXPECT_EQ(resp.status, ServeStatus::kError);

  auto open = server.OpenSessionFromTable(ServingTable(10));
  ASSERT_TRUE(open.ok());
  ServeRequest oob;
  oob.session = open.ValueOrDie();
  oob.kind = RequestKind::kScorePair;
  oob.row_a = 99;  // out of range
  resp = server.Submit(oob)->Wait()[0];
  EXPECT_EQ(resp.status, ServeStatus::kError);
  // And identically on the sequential path.
  EXPECT_EQ(server.ExecuteSequential(oob).status, ServeStatus::kError);
}

// ---------- admission control -----------------------------------------

TEST(ServeServerTest, QueueFullRejectsAreTypedAndImmediate) {
  ServeConfig cfg;
  cfg.threads = 1;
  cfg.queue_cap = 8;
  cfg.batch_max = 64;          // a batch never fills from 8 items...
  cfg.batch_wait_us = 2000000;  // ...so the worker deadline-waits 2 s
  cfg.session = QuickSessionConfig();
  CurationServer server(cfg);
  auto open = server.OpenSessionFromTable(ServingTable(16));
  ASSERT_TRUE(open.ok());
  uint64_t fp = open.ValueOrDie();

  // Fill the queue, then overflow it.
  auto admitted = server.SubmitMany(MixedRequests(fp, 16, 8, "t0"));
  auto overflow = server.SubmitMany(MixedRequests(fp, 16, 4, "t1"));
  ASSERT_TRUE(overflow->Ready());  // rejects settle without a worker
  for (const ServeResponse& r : overflow->Wait()) {
    EXPECT_EQ(r.status, ServeStatus::kRejectedQueueFull);
  }
  EXPECT_EQ(server.stats().rejected_queue_full, 4u);

  server.Stop();  // the held batch drains or flushes as kShutdown
  for (const ServeResponse& r : admitted->Wait()) {
    EXPECT_TRUE(r.status == ServeStatus::kOk ||
                r.status == ServeStatus::kShutdown)
        << ServeStatusName(r.status);
  }
}

TEST(ServeServerTest, TenantInflightCapIsPerTenant) {
  ServeConfig cfg;
  cfg.threads = 1;
  cfg.queue_cap = 1024;
  cfg.batch_max = 64;
  cfg.batch_wait_us = 2000000;
  cfg.tenant_inflight_cap = 3;
  cfg.session = QuickSessionConfig();
  CurationServer server(cfg);
  auto open = server.OpenSessionFromTable(ServingTable(16));
  ASSERT_TRUE(open.ok());
  uint64_t fp = open.ValueOrDie();

  auto heavy = server.SubmitMany(MixedRequests(fp, 16, 5, "greedy"));
  auto light = server.SubmitMany(MixedRequests(fp, 16, 2, "polite"));

  // greedy: 3 admitted, 2 typed rejects; polite: unaffected.
  size_t rejected = 0;
  // Only the rejected slots are settled now; count via stats.
  EXPECT_EQ(server.stats().rejected_tenant_cap, 2u);
  server.Stop();
  for (const ServeResponse& r : heavy->Wait()) {
    if (r.status == ServeStatus::kRejectedTenantCap) ++rejected;
  }
  EXPECT_EQ(rejected, 2u);
  for (const ServeResponse& r : light->Wait()) {
    EXPECT_NE(r.status, ServeStatus::kRejectedTenantCap);
  }
}

// ---------- shutdown ordering -----------------------------------------

TEST(ServeServerTest, ShutdownDrainsInFlightAndFlushesQueuedTyped) {
  ServeConfig cfg;
  cfg.threads = 1;
  cfg.queue_cap = 4096;
  cfg.tenant_inflight_cap = 4096;
  cfg.batch_max = 8;
  cfg.batch_wait_us = 0;
  cfg.session = QuickSessionConfig();
  CurationServer server(cfg);
  auto open = server.OpenSessionFromTable(ServingTable(32));
  ASSERT_TRUE(open.ok());
  uint64_t fp = open.ValueOrDie();

  auto pending = server.SubmitMany(MixedRequests(fp, 32, 512, "t0"));
  server.Stop();  // races the worker on purpose

  // Every request is settled exactly once: executed (kOk) or typed
  // shutdown — never dropped, never hung.
  const std::vector<ServeResponse>& got = pending->Wait();
  size_t ok = 0, shut = 0;
  for (const ServeResponse& r : got) {
    if (r.status == ServeStatus::kOk) {
      ++ok;
    } else {
      ASSERT_EQ(r.status, ServeStatus::kShutdown) << ServeStatusName(r.status);
      ++shut;
    }
  }
  EXPECT_EQ(ok + shut, got.size());
  auto stats = server.stats();
  EXPECT_EQ(stats.completed, ok);
  EXPECT_EQ(stats.shutdown_flushed, shut);
  EXPECT_EQ(stats.admitted, got.size());

  // Post-stop submissions settle immediately with kShutdown.
  auto late = server.Submit(MixedRequests(fp, 32, 1, "t0")[0]);
  ASSERT_TRUE(late->Ready());
  EXPECT_EQ(late->Wait()[0].status, ServeStatus::kShutdown);
  // Stop is idempotent.
  server.Stop();
}

// ---------- session refresh: the stale-ANN arc end to end -------------

TEST(ServeServerTest, RefreshReactivatesAnnAfterUpdate) {
  ServeConfig cfg;
  cfg.threads = 1;
  cfg.session = QuickSessionConfig();
  CurationServer server(cfg);
  auto open = server.OpenSessionFromTable(ServingTable(64));
  ASSERT_TRUE(open.ok());
  uint64_t fp = open.ValueOrDie();
  std::shared_ptr<Session> session = server.FindSession(fp);
  ASSERT_NE(session, nullptr);
  ASSERT_TRUE(session->AnnActive());

  // A cell update leaves serving state stale after the re-encode
  // overwrites the store — Refresh must come back with a live index.
  ASSERT_TRUE(session->Update(3, 1, Value(123.5)).ok());
  ASSERT_TRUE(server.RefreshSession(fp).ok());
  EXPECT_TRUE(session->AnnActive());

  // And the refreshed state actually serves: neighbors of the updated
  // row, scores in range.
  ServeRequest req;
  req.session = fp;
  req.kind = RequestKind::kNearestRows;
  req.row_a = 3;
  req.k = 4;
  ServeResponse resp = server.ExecuteSequential(req);
  ASSERT_EQ(resp.status, ServeStatus::kOk) << resp.message;
  EXPECT_EQ(resp.neighbors.size(), 4u);

  EXPECT_FALSE(server.RefreshSession(0xabcd).ok());  // unknown session
}

// ---------- ADCT-file sessions + fingerprint cache keying -------------

TEST(ServeServerTest, OpenSessionFromFileIsFingerprintCached) {
  std::string path = testing::TempDir() + "/serve_session.adct";
  ASSERT_TRUE(data::WriteTableFile(ServingTable(40), path).ok());
  ServeConfig cfg;
  cfg.threads = 1;
  cfg.session = QuickSessionConfig();
  CurationServer server(cfg);

  auto first = server.OpenSession(path);
  ASSERT_TRUE(first.ok());
  auto again = server.OpenSession(path);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(first.ValueOrDie(), again.ValueOrDie());
  // Second open hit the cache instead of rebuilding the zoo.
  EXPECT_GE(server.sessions().stats().hits, 1u);

  ServeRequest req;
  req.session = first.ValueOrDie();
  req.kind = RequestKind::kScorePair;
  req.row_a = 1;
  req.row_b = 2;
  EXPECT_EQ(server.Submit(req)->Wait()[0].status, ServeStatus::kOk);
  std::remove(path.c_str());
}

// ---------- concurrency (the TSan subject) ----------------------------

TEST(ServeServerTest, ConcurrentTenantsCacheChurnAndRefresh) {
  ServeConfig cfg;
  cfg.threads = 2;
  cfg.queue_cap = 4096;
  cfg.batch_max = 16;
  cfg.batch_wait_us = 100;
  cfg.session_capacity = 1;  // maximal eviction pressure
  cfg.session = QuickSessionConfig();
  CurationServer server(cfg);

  Table t1 = ServingTable(32, 1);
  Table t2 = ServingTable(32, 2);
  auto open1 = server.OpenSessionFromTable(t1);
  ASSERT_TRUE(open1.ok());
  uint64_t fp1 = open1.ValueOrDie();

  std::atomic<bool> failed{false};
  std::vector<std::thread> clients;
  for (int c = 0; c < 3; ++c) {
    clients.emplace_back([&, c] {
      for (int w = 0; w < 8; ++w) {
        auto pending = server.SubmitMany(
            MixedRequests(fp1, 32, 24, "tenant" + std::to_string(c)));
        for (const ServeResponse& r : pending->Wait()) {
          // kError covers "session evicted mid-flight by the churn
          // thread" — a served answer or a typed miss, never a hang or
          // a stale pointer.
          if (r.status != ServeStatus::kOk &&
              r.status != ServeStatus::kError &&
              r.status != ServeStatus::kRejectedQueueFull) {
            failed.store(true);
          }
        }
      }
    });
  }
  // Churn thread: re-opens the second dataset (evicting the first from
  // the capacity-1 cache) and refreshes whichever session is resident.
  clients.emplace_back([&] {
    for (int i = 0; i < 4; ++i) {
      auto open2 = server.OpenSessionFromTable(t2);
      if (!open2.ok()) failed.store(true);
      (void)server.RefreshSession(fp1);
      auto reopened = server.OpenSessionFromTable(t1);
      if (!reopened.ok() || reopened.ValueOrDie() != fp1) failed.store(true);
      (void)server.RefreshSession(fp1);
    }
  });
  for (std::thread& th : clients) th.join();
  EXPECT_FALSE(failed.load());
  server.Stop();
  EXPECT_EQ(server.stats().completed + server.stats().shutdown_flushed +
                server.stats().rejected_queue_full +
                server.stats().rejected_tenant_cap,
            server.stats().admitted + server.stats().rejected_queue_full +
                server.stats().rejected_tenant_cap);
}

// ---------- request tracing across the queue/worker handoff -----------

TEST(ServeServerTest, TracedRequestsShareOneTraceIdAcrossThreads) {
  obs::ClearSpans();
  ServeConfig cfg;
  cfg.threads = 2;
  cfg.queue_cap = 4096;
  cfg.tenant_inflight_cap = 4096;
  cfg.batch_max = 8;
  cfg.batch_wait_us = 100;
  cfg.trace_sample = 1.0;  // trace every request
  cfg.session = QuickSessionConfig();
  CurationServer server(cfg);
  auto open = server.OpenSessionFromTable(ServingTable(32));
  ASSERT_TRUE(open.ok());
  uint64_t fp = open.ValueOrDie();

  const size_t kCount = 48;
  auto pending = server.SubmitMany(MixedRequests(fp, 32, kCount, "t0"));
  for (const ServeResponse& r : pending->Wait()) {
    ASSERT_EQ(r.status, ServeStatus::kOk) << r.message;
  }
  server.Stop();  // workers join; their span buffers hold the worker side

  std::vector<obs::SpanRecord> spans = obs::TakeSpans();
#ifdef AUTODC_DISABLE_OBS
  EXPECT_TRUE(spans.empty());
#else
  // Every admitted request minted one trace: an admission span on the
  // submitting thread plus batch/execute spans on a worker thread, all
  // stitched under one trace id. (Session building recorded its own
  // untraced spans — trainer.fit and friends — which stay out of every
  // trace group.)
  std::map<uint64_t, std::vector<const obs::SpanRecord*>> traces;
  for (const obs::SpanRecord& s : spans) {
    if (s.name.rfind("serve.", 0) == 0) {
      EXPECT_NE(s.trace_id, 0u) << s.name << " escaped its trace";
    }
    if (s.trace_id != 0) traces[s.trace_id].push_back(&s);
  }
  EXPECT_EQ(traces.size(), kCount);
  EXPECT_EQ(obs::SpansDropped(), 0u);

  for (const auto& [trace_id, group] : traces) {
    (void)trace_id;
    const obs::SpanRecord* admit = nullptr;
    const obs::SpanRecord* batch = nullptr;
    const obs::SpanRecord* execute = nullptr;
    for (const obs::SpanRecord* s : group) {
      if (s->name == "serve.admit") admit = s;
      if (s->name == "serve.batch") batch = s;
      if (s->name == "serve.execute") execute = s;
    }
    ASSERT_EQ(group.size(), 3u);
    ASSERT_NE(admit, nullptr);
    ASSERT_NE(batch, nullptr);
    ASSERT_NE(execute, nullptr);
    // The chain: admission (root) → micro-batch → batched execute.
    EXPECT_EQ(admit->parent_id, 0u);
    EXPECT_EQ(batch->parent_id, admit->id);
    EXPECT_EQ(execute->parent_id, batch->id);
    // The handoff crossed threads: the admission span was recorded on
    // the submitting thread, the worker spans on a worker.
    EXPECT_NE(admit->thread, batch->thread);
    EXPECT_EQ(batch->thread, execute->thread);
  }

  // TakeSpans order (start_us, id) puts every parent before its
  // children — the invariant the Chrome-trace exporter renders by.
  std::map<uint64_t, size_t> position;
  for (size_t i = 0; i < spans.size(); ++i) position[spans[i].id] = i;
  for (size_t i = 0; i < spans.size(); ++i) {
    if (spans[i].parent_id == 0) continue;
    auto it = position.find(spans[i].parent_id);
    ASSERT_NE(it, position.end());
    EXPECT_LT(it->second, i) << spans[i].name << " rendered before its parent";
  }

  // And the export stitches the handoff: valid JSON, one flow edge per
  // cross-thread parent/child hop (admit→batch for every request).
  std::string doc = obs::FormatChromeTrace(spans);
  auto parsed = ParseJson(doc);
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  const JsonValue* other = parsed.ValueOrDie().Find("otherData");
  ASSERT_NE(other, nullptr);
  const JsonValue* edges = other->Find("flow_edges");
  ASSERT_NE(edges, nullptr);
  EXPECT_GE(edges->number_value, static_cast<double>(kCount));
#endif
  obs::ClearSpans();
}

TEST(ServeServerTest, UntracedServerRecordsNoSpans) {
  obs::ClearSpans();
  ServeConfig cfg;
  cfg.threads = 1;
  cfg.trace_sample = 0.0;  // the default: tracing off
  cfg.session = QuickSessionConfig();
  CurationServer server(cfg);
  auto open = server.OpenSessionFromTable(ServingTable(16));
  ASSERT_TRUE(open.ok());
  auto pending =
      server.SubmitMany(MixedRequests(open.ValueOrDie(), 16, 24, "t0"));
  pending->Wait();
  server.Stop();
  // Session building records its own library spans; what must not
  // appear is any request-scoped serving span or a minted trace id.
  for (const obs::SpanRecord& s : obs::TakeSpans()) {
    EXPECT_EQ(s.trace_id, 0u) << s.name;
    EXPECT_NE(s.name.rfind("serve.", 0), 0u) << s.name;
  }
  obs::ClearSpans();
}

// ---------- the operator's live view ----------------------------------

TEST(ServeServerTest, DebugSnapshotReflectsServerState) {
  ServeConfig cfg;
  cfg.threads = 2;
  cfg.queue_cap = 512;
  cfg.batch_max = 16;
  cfg.session = QuickSessionConfig();
  CurationServer server(cfg);
  auto open = server.OpenSessionFromTable(ServingTable(24));
  ASSERT_TRUE(open.ok());
  auto pending =
      server.SubmitMany(MixedRequests(open.ValueOrDie(), 24, 32, "t0"));
  pending->Wait();

  CurationServer::DebugSnapshot d = server.GetDebugSnapshot();
  EXPECT_EQ(d.queue_depth, 0u);          // everything drained
  EXPECT_EQ(d.inflight_requests, 0u);
  EXPECT_FALSE(d.stopping);
  EXPECT_EQ(d.stats.admitted, 32u);
  EXPECT_EQ(d.stats.completed, 32u);
  EXPECT_EQ(d.sessions, 1u);
  EXPECT_EQ(d.session_capacity, cfg.session_capacity);
  EXPECT_EQ(d.threads, 2u);
  EXPECT_EQ(d.queue_cap, 512u);
  EXPECT_EQ(d.batch_max, 16u);

  // The JSON view parses and carries the same numbers.
  auto parsed = ParseJson(server.DebugSnapshotJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  const JsonValue& doc = parsed.ValueOrDie();
  ASSERT_NE(doc.Find("queue"), nullptr);
  EXPECT_EQ(doc.Find("queue")->Find("cap")->number_value, 512.0);
  EXPECT_EQ(doc.Find("stats")->Find("admitted")->number_value, 32.0);
  EXPECT_EQ(doc.Find("stats")->Find("completed")->number_value, 32.0);
  EXPECT_EQ(doc.Find("sessions")->Find("resident")->number_value, 1.0);
  EXPECT_TRUE(doc.Find("stopping")->is_bool());
  EXPECT_FALSE(doc.Find("stopping")->bool_value);

  server.Stop();
  EXPECT_TRUE(server.GetDebugSnapshot().stopping);
  auto parsed2 = ParseJson(server.DebugSnapshotJson());
  ASSERT_TRUE(parsed2.ok());
  EXPECT_TRUE(parsed2.ValueOrDie().Find("stopping")->bool_value);
}

}  // namespace
}  // namespace autodc
